//===- net/Server.cpp - epoll front end for the serve protocol ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "net/Replication.h"
#include "net/Socket.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace poce;
using namespace poce::net;

namespace {

/// The eventfd a signal handler may poke. Only requestStop() reads it;
/// written with a single async-signal-safe write().
std::atomic<int> GStopFd{-1};
/// Set by requestStop() so a stop that races init() is not lost.
std::atomic<bool> GStopRequested{false};

bool isReadVerb(const std::string &Verb) {
  return Verb == "ls" || Verb == "pts" || Verb == "alias";
}

bool isLocalVerb(const std::string &Verb) {
  return Verb == "help" || Verb == "quit" || Verb == "exit";
}

const char *helpReply() {
  return "ok commands: ls X | pts X | alias X Y | add LINE | "
         "retract LINE | save PATH | checkpoint [PATH] | stats | counters | "
         "metrics | verify | replicate BASE SEQ | promote | shutdown | help | "
         "quit";
}

} // namespace

NetServer::NetServer(serve::ServerCore &Core, NetServerOptions InOpts)
    : Core(Core), Opts(std::move(InOpts)),
      Pool(ThreadPool::resolveThreads(Opts.Lanes)) {
  LaneSlots.resize(Pool.numLanes());
  ReadOnlyNow.store(Opts.ReadOnly, std::memory_order_release);
}

NetServer::~NetServer() {
  // Normal teardown happens at the end of run(); this covers init()
  // failures and callers that never ran.
  if (Writer.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(WriterMutex);
      WriterStop = true;
    }
    WriterCv.notify_all();
    Writer.join();
  }
  for (auto &Entry : Conns)
    closeFd(Entry.second.Fd);
  Conns.clear();
  for (int Fd : ListenFds)
    closeFd(Fd);
  GStopFd.store(-1, std::memory_order_release);
  closeFd(WakeFd);
  closeFd(EpollFd);
}

void NetServer::requestStop() {
  GStopRequested.store(true, std::memory_order_release);
  int Fd = GStopFd.load(std::memory_order_acquire);
  if (Fd >= 0) {
    uint64_t One = 1;
    // write() is async-signal-safe; a failed wake is recovered by the
    // loop's timeout path.
    (void)!::write(Fd, &One, sizeof(One));
  }
}

uint64_t NetServer::nowMs() const { return trace::nowMicros() / 1000; }

Status NetServer::addListener(int Fd) {
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = Fd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("epoll_ctl(listener): ") +
                             std::strerror(errno));
  ListenFds.push_back(Fd);
  return Status();
}

Status NetServer::init() {
  if (Opts.TcpSpec.empty() && Opts.UnixPath.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "no listener configured (need --listen or "
                         "--unix)");

  MetricsRegistry &R = MetricsRegistry::global();
  LatencyHist = &R.histogram(
      "poce_net_query_latency_us",
      "End-to-end read-lane execution latency of one socket query");
  PublishHist = &R.histogram(
      "poce_net_view_publish_us",
      "Wall time to rebuild and publish a ReadView epoch");
  QueriesTotal = &R.counter("poce_net_queries_total",
                            "Socket queries executed on read lanes");
  ErrorsTotal = &R.counter("poce_net_query_errors_total",
                           "Socket queries answered with an err reply");
  ConnsTotal = &R.counter("poce_net_connections_total",
                          "Connections accepted");
  OversizedTotal = &R.counter("poce_net_oversized_total",
                              "Requests rejected for exceeding "
                              "--max-request");
  IdleClosedTotal = &R.counter("poce_net_idle_closed_total",
                               "Connections closed by the idle timeout");
  ReadsDuringWrite =
      &R.counter("poce_net_reads_during_write_total",
                 "Queries executed while a writer batch was in flight");
  PublishesTotal = &R.counter("poce_net_view_publishes_total",
                              "ReadView epochs published");
  ConnsOpen = &R.gauge("poce_net_conns_open", "Connections currently open");
  FollowersGauge = &R.gauge("poce_repl_followers",
                            "Replica connections currently registered");
  RecordsShipped = &R.counter("poce_repl_records_shipped_total",
                              "WAL records streamed to replicas");
  SnapshotsShipped = &R.counter("poce_repl_snapshots_shipped_total",
                                "Bootstrap snapshots shipped to replicas");
  P50 = &R.gauge("poce_net_query_p50_us", "Read-lane query latency p50");
  P99 = &R.gauge("poce_net_query_p99_us", "Read-lane query latency p99");
  P999 = &R.gauge("poce_net_query_p999_us", "Read-lane query latency p999");
  EpochGauge = &R.gauge("poce_net_epoch", "Published ReadView epoch");
  R.gauge("poce_net_lanes", "Read lanes serving queries")
      .set(Pool.numLanes());
  LaneQueryCounters.clear();
  for (unsigned Lane = 0; Lane != Pool.numLanes(); ++Lane)
    LaneQueryCounters.push_back(
        &R.counter("poce_net_lane" + std::to_string(Lane) + "_queries",
                   "Queries executed by read lane " + std::to_string(Lane)));

  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (EpollFd < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("epoll_create1: ") +
                             std::strerror(errno));
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (WakeFd < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("eventfd: ") + std::strerror(errno));
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = WakeFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev) < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("epoll_ctl(wake): ") +
                             std::strerror(errno));

  if (!Opts.TcpSpec.empty()) {
    Expected<int> Fd = listenTcp(Opts.TcpSpec);
    if (!Fd.ok())
      return Fd.status();
    Status Added = addListener(*Fd);
    if (!Added)
      return Added;
    Expected<uint16_t> Port = localPort(*Fd);
    if (!Port.ok())
      return Port.status();
    TcpPort = *Port;
  }
  if (!Opts.UnixPath.empty()) {
    Expected<int> Fd = listenUnix(Opts.UnixPath);
    if (!Fd.ok())
      return Fd.status();
    Status Added = addListener(*Fd);
    if (!Added)
      return Added;
  }

  // The startup epoch: published before any connection can be accepted,
  // so the first read wave always has a view.
  std::vector<uint8_t> Bytes;
  Status Serialized = Core.serializeState(Bytes);
  if (!Serialized)
    return Serialized.withContext("publishing startup view");
  Expected<std::shared_ptr<const ReadView>> View =
      ReadView::build(Bytes, ViewEpoch);
  if (!View.ok())
    return View.status().withContext("publishing startup view");
  Publisher.publish(*View);
  PublishesTotal->inc();
  EpochGauge->set(ViewEpoch);

  // Replication sink: fires on the writer thread (the core's owner once
  // the writer starts below), staging stream events into the same
  // ordered batch as the verb replies they interleave with.
  serve::ReplicationSink Sink;
  Sink.OnRecord = [this](uint64_t Seq, const std::string &Line) {
    Completion Ev;
    Ev.Kind = Completion::Kind::ReplRecord;
    Ev.Seq = Seq;
    Ev.Line = Line;
    WriterOut.push_back(std::move(Ev));
  };
  Sink.OnRebase = [this](uint64_t NewBase) {
    Completion Ev;
    Ev.Kind = Completion::Kind::ReplRebase;
    Ev.Base = NewBase;
    WriterOut.push_back(std::move(Ev));
  };
  Core.setReplicationSink(std::move(Sink));

  // A fresh instance starts undrained even if a previous server in this
  // process (tests run several) was stopped via requestStop().
  GStopRequested.store(false, std::memory_order_release);
  GStopFd.store(WakeFd, std::memory_order_release);
  Writer = std::thread([this] { writerLoop(); });
  return Status();
}

void NetServer::acceptAll(int ListenFd) {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return;
      std::fprintf(stderr, "scserved: accept: %s\n", std::strerror(errno));
      return;
    }
    if (Draining) {
      closeFd(Fd);
      continue;
    }
    epoll_event Ev{};
    Ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    Ev.data.fd = Fd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0) {
      std::fprintf(stderr, "scserved: epoll_ctl(conn): %s\n",
                   std::strerror(errno));
      closeFd(Fd);
      continue;
    }
    auto Inserted = Conns.emplace(Fd, Conn(Opts.MaxRequest));
    Conn &C = Inserted.first->second;
    C.Fd = Fd;
    C.Gen = NextGen++;
    C.LastActiveMs = nowMs();
    ConnsTotal->inc();
    ConnsOpen->set(Conns.size());
  }
}

void NetServer::readConn(Conn &C) {
  // Edge-triggered: drain the socket to EAGAIN.
  char Buf[16384];
  for (;;) {
    ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.In.append(Buf, static_cast<size_t>(N));
      C.LastActiveMs = nowMs();
      continue;
    }
    if (N == 0) {
      C.PeerClosed = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    // Hard error: whatever was in flight is undeliverable.
    C.PeerClosed = true;
    C.Lines.clear();
    C.Out.clear();
    C.CloseAfterFlush = true;
    break;
  }
  std::string Text;
  for (;;) {
    LineBuffer::Item Item = C.In.next(Text);
    if (Item == LineBuffer::Item::None)
      break;
    C.Lines.emplace_back(Item == LineBuffer::Item::Oversized, Text);
  }
}

void NetServer::flushConn(Conn &C) {
  while (!C.Out.empty()) {
    ssize_t N = ::write(C.Fd, C.Out.data(), C.Out.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Backpressure: keep the residue and re-arm for EPOLLOUT; the
        // loop resumes the flush when the peer drains its window.
        if (!C.WantWrite) {
          epoll_event Ev{};
          Ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
          Ev.data.fd = C.Fd;
          ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
          C.WantWrite = true;
        }
        return;
      }
      closeConn(C.Fd);
      return;
    }
    C.Out.erase(0, static_cast<size_t>(N));
  }
  if (C.WantWrite) {
    epoll_event Ev{};
    Ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    Ev.data.fd = C.Fd;
    ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
    C.WantWrite = false;
  }
  if (C.CloseAfterFlush)
    closeConn(C.Fd);
}

void NetServer::closeConn(int Fd) {
  auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  if (It->second.IsReplica && ReplicaCount > 0) {
    --ReplicaCount;
    FollowersGauge->set(ReplicaCount);
  }
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  closeFd(Fd);
  Conns.erase(It);
  ConnsOpen->set(Conns.size());
}

void NetServer::dispatch() {
  std::vector<ReadTask> Batch;
  std::vector<WriterJob> NewJobs;
  for (auto &Entry : Conns) {
    Conn &C = Entry.second;
    while (!C.AwaitingWriter && !C.Lines.empty()) {
      bool Oversized = C.Lines.front().first;
      std::string Line = std::move(C.Lines.front().second);
      C.Lines.pop_front();

      ReadTask Task;
      Task.Fd = C.Fd;
      Task.Gen = C.Gen;
      if (Oversized) {
        OversizedTotal->inc();
        Task.Reply =
            "err " + Status::error(ErrorCode::TooLarge,
                                   "request is " + Line +
                                       " bytes; limit is " +
                                       std::to_string(Opts.MaxRequest))
                         .wire();
        Batch.push_back(std::move(Task));
        continue;
      }
      serve::Request Req = serve::parseRequest(Line);
      if (Req.Verb.empty() || Req.Verb[0] == '#')
        continue; // Blank/comment lines get no reply, as on stdin.
      if (isReadVerb(Req.Verb)) {
        Task.IsQuery = true;
        Task.Line = std::move(Line);
        Batch.push_back(std::move(Task));
        continue;
      }
      if (isLocalVerb(Req.Verb)) {
        bool IsQuit = Req.Verb != "help";
        Task.Reply = IsQuit ? "ok bye" : helpReply();
        Task.CloseConn = IsQuit;
        Batch.push_back(std::move(Task));
        if (IsQuit)
          break;
        continue;
      }
      // Everything else (add/save/checkpoint/stats/counters/metrics/
      // shutdown, and unknown verbs) belongs to the writer lane.
      // Head-of-line: this connection's later requests wait for the
      // completion so its replies arrive in request order.
      WriterJob Job;
      Job.Fd = C.Fd;
      Job.Gen = C.Gen;
      Job.Line = std::move(Line);
      NewJobs.push_back(std::move(Job));
      C.AwaitingWriter = true;
      break;
    }
  }

  if (!NewJobs.empty()) {
    {
      std::lock_guard<std::mutex> Lock(WriterMutex);
      for (WriterJob &Job : NewJobs)
        Jobs.push_back(std::move(Job));
    }
    WriterCv.notify_one();
  }
  if (!Batch.empty())
    runReadWave(Batch);

  // Deliver the wave's replies in batch order (per-connection FIFO).
  for (ReadTask &Task : Batch) {
    auto It = Conns.find(Task.Fd);
    if (It == Conns.end() || It->second.Gen != Task.Gen)
      continue;
    Conn &C = It->second;
    C.Out += Task.Reply;
    C.Out += '\n';
    if (Task.CloseConn)
      C.CloseAfterFlush = true;
  }
  // Flush everything with output (by fd: flushConn may close and erase,
  // which would invalidate a live map iterator), then reap connections
  // that are done.
  std::vector<int> ToFlush;
  for (auto &Entry : Conns)
    if (!Entry.second.Out.empty())
      ToFlush.push_back(Entry.first);
  for (int Fd : ToFlush) {
    auto It = Conns.find(Fd);
    if (It != Conns.end())
      flushConn(It->second);
  }
  std::vector<int> Finished;
  for (auto &Entry : Conns) {
    Conn &C = Entry.second;
    bool Quiet =
        C.Lines.empty() && !C.AwaitingWriter && C.Out.empty();
    if ((C.PeerClosed || Draining) && Quiet)
      Finished.push_back(Entry.first);
  }
  for (int Fd : Finished)
    closeConn(Fd);
}

void NetServer::runReadWave(std::vector<ReadTask> &Batch) {
  size_t NumQueries = 0;
  for (const ReadTask &Task : Batch)
    NumQueries += Task.IsQuery;
  if (NumQueries == 0)
    return;
  bool WriterActive;
  {
    std::lock_guard<std::mutex> Lock(WriterMutex);
    WriterActive = WriterBusy || !Jobs.empty();
  }
  // One epoch pin for the whole wave: every query in the batch answers
  // against the same published state, concurrent with whatever the
  // writer lane is doing to its own solver.
  std::shared_ptr<const ReadView> View = Publisher.acquire();
  Pool.parallelFor(
      Batch.size(),
      [&](size_t I, unsigned Lane) {
        ReadTask &Task = Batch[I];
        if (!Task.IsQuery)
          return;
        LaneAccum &Accum = LaneSlots[Lane].Value;
        const uint64_t StartUs = trace::nowMicros();
        serve::Request Req = serve::parseRequest(Task.Line);
        uint32_t X = View->varOf(Req.Arg1);
        if (X == ReadView::NotFound) {
          Task.Reply = "err " + Status::error(ErrorCode::NotFound,
                                              "unknown variable '" +
                                                  Req.Arg1 + "'")
                                    .wire();
          Task.Errored = true;
        } else if (Req.Verb == "alias") {
          uint32_t Y = View->varOf(Req.Arg2);
          if (Y == ReadView::NotFound) {
            Task.Reply = "err " + Status::error(ErrorCode::NotFound,
                                                "unknown variable '" +
                                                    Req.Arg2 + "'")
                                      .wire();
            Task.Errored = true;
          } else {
            Task.Reply = View->alias(X, Y);
          }
        } else if (Req.Verb == "ls") {
          Task.Reply = View->ls(X);
        } else {
          Task.Reply = View->pts(X);
        }
        ++Accum.Queries;
        Accum.Errors += Task.Errored;
        Accum.LatenciesUs.push_back(trace::nowMicros() - StartUs);
      },
      /*Grain=*/1);
  mergeLaneStats();
  if (WriterActive)
    ReadsDuringWrite->inc(NumQueries);
}

void NetServer::mergeLaneStats() {
  // The wave barrier in parallelFor() is the happens-before edge that
  // makes the plain per-lane stores visible here.
  for (unsigned Lane = 0; Lane != Pool.numLanes(); ++Lane) {
    LaneAccum &Accum = LaneSlots[Lane].Value;
    if (Accum.Queries == 0 && Accum.LatenciesUs.empty())
      continue;
    QueriesTotal->inc(Accum.Queries);
    ErrorsTotal->inc(Accum.Errors);
    LaneQueryCounters[Lane]->inc(Accum.Queries);
    for (uint64_t Us : Accum.LatenciesUs)
      LatencyHist->record(Us);
    Accum.clear();
  }
  P50->set(LatencyHist->quantile(0.50));
  P99->set(LatencyHist->quantile(0.99));
  P999->set(LatencyHist->quantile(0.999));
}

void NetServer::applyCompletions() {
  std::deque<Completion> Ready;
  {
    std::lock_guard<std::mutex> Lock(WriterMutex);
    Ready.swap(Done);
  }
  for (Completion &Comp : Ready) {
    if (Comp.Kind == Completion::Kind::ReplRecord) {
      // Broadcast in completion order; the NextSeq guard skips replicas
      // whose handshake reply already contained this record.
      for (auto &Entry : Conns) {
        Conn &C = Entry.second;
        if (!C.IsReplica || Comp.Seq < C.NextSeq)
          continue;
        C.Out += "r " + std::to_string(Comp.Seq) + " " + Comp.Line + "\n";
        C.NextSeq = Comp.Seq + 1;
        RecordsShipped->inc();
      }
      ReplKnownSeq = Comp.Seq + 1;
      continue;
    }
    if (Comp.Kind == Completion::Kind::ReplRebase) {
      for (auto &Entry : Conns) {
        Conn &C = Entry.second;
        if (!C.IsReplica)
          continue;
        C.Out += "rebase " + serve::hexId(Comp.Base) + "\n";
        C.NextSeq = 0;
      }
      ReplKnownSeq = 0;
      continue;
    }
    if (Comp.Shutdown)
      beginDrain();
    auto It = Conns.find(Comp.Fd);
    if (It == Conns.end() || It->second.Gen != Comp.Gen)
      continue;
    Conn &C = It->second;
    C.AwaitingWriter = false;
    C.Out += Comp.Reply;
    C.Out += '\n';
    if (Comp.MakeReplica) {
      if (!C.IsReplica) {
        ++ReplicaCount;
        FollowersGauge->set(ReplicaCount);
      }
      C.IsReplica = C.LongLived = true;
      C.NextSeq = Comp.ReplicaNextSeq;
      C.LastHbMs = nowMs();
      if (ReplKnownSeq < Comp.ReplicaNextSeq)
        ReplKnownSeq = Comp.ReplicaNextSeq;
    }
  }
}

void NetServer::sweepIdle() {
  if (Opts.IdleTimeoutMs == 0)
    return;
  uint64_t Now = nowMs();
  std::vector<int> Expired;
  for (auto &Entry : Conns) {
    Conn &C = Entry.second;
    // Long-lived connections (tailing replicas) are quiet by design:
    // they send one handshake and then only ever receive.
    bool Busy = C.AwaitingWriter || !C.Lines.empty() || !C.Out.empty();
    if (C.LongLived || Busy)
      continue;
    if (Now - C.LastActiveMs >= Opts.IdleTimeoutMs)
      Expired.push_back(Entry.first);
  }
  for (int Fd : Expired) {
    IdleClosedTotal->inc();
    closeConn(Fd);
  }
}

void NetServer::heartbeatReplicas() {
  if (ReplicaCount == 0 || Opts.HeartbeatMs == 0)
    return;
  uint64_t Now = nowMs();
  std::vector<int> ToFlush;
  for (auto &Entry : Conns) {
    Conn &C = Entry.second;
    if (!C.IsReplica || Now - C.LastHbMs < Opts.HeartbeatMs)
      continue;
    C.Out += "hb " + std::to_string(ReplKnownSeq) + "\n";
    C.LastHbMs = Now;
    ToFlush.push_back(Entry.first);
  }
  for (int Fd : ToFlush) {
    auto It = Conns.find(Fd);
    if (It != Conns.end())
      flushConn(It->second);
  }
}

bool NetServer::quiescent() const {
  if (!Conns.empty())
    return false;
  std::lock_guard<std::mutex> Lock(WriterMutex);
  return Jobs.empty() && !WriterBusy;
}

void NetServer::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  // Stop accepting: close the doors, finish everyone inside.
  for (int Fd : ListenFds) {
    ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
    closeFd(Fd);
  }
  ListenFds.clear();
}

int NetServer::run() {
  epoll_event Events[64];
  while (!(Draining && quiescent())) {
    if (GStopRequested.load(std::memory_order_acquire))
      beginDrain();
    int TimeoutMs = Draining
                        ? 50
                        : ((Opts.IdleTimeoutMs || ReplicaCount) ? 100 : 1000);
    int N = ::epoll_wait(EpollFd, Events, 64, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "scserved: epoll_wait: %s\n",
                   std::strerror(errno));
      return 1;
    }
    for (int I = 0; I != N; ++I) {
      int Fd = Events[I].data.fd;
      uint32_t Ev = Events[I].events;
      if (Fd == WakeFd) {
        uint64_t Drain;
        while (::read(WakeFd, &Drain, sizeof(Drain)) > 0)
          ;
        continue;
      }
      if (std::find(ListenFds.begin(), ListenFds.end(), Fd) !=
          ListenFds.end()) {
        acceptAll(Fd);
        continue;
      }
      auto It = Conns.find(Fd);
      if (It == Conns.end())
        continue;
      Conn &C = It->second;
      if (Ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR))
        readConn(C);
      if (Ev & EPOLLOUT)
        flushConn(C);
    }
    applyCompletions();
    dispatch();
    sweepIdle();
    heartbeatReplicas();
  }

  // Drained: stop the writer lane, then finish the durability teardown
  // on this thread (after the join the core is single-owner again).
  {
    std::lock_guard<std::mutex> Lock(WriterMutex);
    WriterStop = true;
  }
  WriterCv.notify_all();
  if (Writer.joinable())
    Writer.join();
  Core.shutdownDrain();
  if (!Opts.MetricsOut.empty()) {
    Status Dumped = Core.dumpMetricsTo(Opts.MetricsOut);
    if (!Dumped)
      std::fprintf(stderr, "scserved: metrics dump failed: %s\n",
                   Dumped.toString().c_str());
  }
  if (!Opts.UnixPath.empty())
    ::unlink(Opts.UnixPath.c_str());
  return 0;
}

void NetServer::republish() {
  const uint64_t StartUs = trace::nowMicros();
  std::vector<uint8_t> Bytes;
  Status Serialized = Core.serializeState(Bytes);
  if (!Serialized) {
    std::fprintf(stderr,
                 "scserved: view republish failed (%s); readers keep "
                 "the previous epoch\n",
                 Serialized.toString().c_str());
    return;
  }
  Expected<std::shared_ptr<const ReadView>> View =
      ReadView::build(Bytes, ++ViewEpoch);
  if (!View.ok()) {
    std::fprintf(stderr,
                 "scserved: view republish failed (%s); readers keep "
                 "the previous epoch\n",
                 View.status().toString().c_str());
    return;
  }
  Publisher.publish(*View);
  PublishesTotal->inc();
  EpochGauge->set(ViewEpoch);
  PublishHist->record(trace::nowMicros() - StartUs);
}

void NetServer::handleClientJob(WriterJob &Job, Completion &Comp,
                                bool &Mutated) {
  serve::Request Req = serve::parseRequest(Job.Line);
  auto Err = [&Comp](const Status &St) { Comp.Reply = "err " + St.wire(); };
  if (Req.Verb == "replicate") {
    if (ReadOnlyNow.load(std::memory_order_acquire)) {
      Err(Status::error(ErrorCode::FailedPrecondition,
                        "chained replication is not supported; replicate "
                        "from the primary"));
      return;
    }
    if (Req.Arg1.empty() || Req.Arg2.empty()) {
      Err(Status::error(ErrorCode::InvalidArgument,
                        "usage: replicate <base_hex> <seq>"));
      return;
    }
    uint64_t Base = 0, Seq = 0;
    if (!parseHexU64(Req.Arg1, Base) || !parseDecU64(Req.Arg2, Seq)) {
      // Raw strtoull here once let "replicate -1 -1" through with a
      // wrapped-around cursor; malformed handshakes are refused now.
      Err(Status::error(ErrorCode::InvalidArgument,
                        "malformed replicate cursor (base must be hex, "
                        "seq decimal)"));
      return;
    }
    std::string Reply;
    uint64_t NextSeq = 0;
    bool Snapshot = false;
    Status Built = Core.buildReplicateStream(Base, Seq, Reply, NextSeq,
                                             Snapshot);
    if (!Built) {
      Err(Built);
      return;
    }
    Comp.Reply = std::move(Reply);
    Comp.MakeReplica = true;
    Comp.ReplicaNextSeq = NextSeq;
    if (Snapshot)
      SnapshotsShipped->inc();
    return;
  }
  if (Req.Verb == "promote") {
    if (!Opts.ReadOnly) {
      Err(Status::error(ErrorCode::FailedPrecondition,
                        "this server is already the primary"));
      return;
    }
    if (!ReadOnlyNow.load(std::memory_order_acquire)) {
      Err(Status::error(ErrorCode::FailedPrecondition,
                        "already promoted"));
      return;
    }
    Expected<uint64_t> Base = Core.promote();
    if (!Base.ok()) {
      Err(Base.status());
      return;
    }
    // Writable from this job on; in-flight replicated applies behind us
    // in the queue are refused, and OnPromote tells the driver to stop
    // its replication client (without joining it here — it may itself be
    // blocked on a queued internal job).
    ReadOnlyNow.store(false, std::memory_order_release);
    if (Opts.OnPromote)
      Opts.OnPromote();
    Comp.Reply = "ok promoted base=" + serve::hexId(*Base);
    return;
  }
  if (ReadOnlyNow.load(std::memory_order_acquire) &&
      (Req.Verb == "add" || Req.Verb == "retract" || Req.Verb == "save" ||
       Req.Verb == "checkpoint")) {
    Err(Status::error(ErrorCode::ReadOnly,
                      "this server is a read-only follower; write to the "
                      "primary or promote this one"));
    return;
  }
  if (!Core.handleWriterVerb(Req, Comp.Reply))
    Comp.Reply = "err " + Status::error(ErrorCode::InvalidArgument,
                                        "unknown verb '" + Req.Verb +
                                            "'; try help")
                              .wire();
  if ((Req.Verb == "add" && Comp.Reply == "ok added") ||
      (Req.Verb == "retract" && Comp.Reply == "ok retracted"))
    Mutated = true;
  if (Core.shutdownRequested())
    Comp.Shutdown = true;
}

Status NetServer::runInternalJob(WriterJob &Job, bool &Mutated) {
  // A promoted follower owns its own WAL lifetime; late stream traffic
  // from the old primary must not be applied over it.
  if (Opts.ReadOnly && !ReadOnlyNow.load(std::memory_order_acquire))
    return Status::error(ErrorCode::FailedPrecondition,
                         "promoted; replicated applies are refused");
  switch (Job.Kind) {
  case WriterJob::Kind::ReplApply:
    for (auto &Rec : Job.Records) {
      Status Applied = Core.applyReplicated(Rec.second);
      if (!Applied)
        return Applied.withContext("record " + std::to_string(Rec.first));
      Mutated = true;
    }
    return Status();
  case WriterJob::Kind::ReplRebase:
    return Core.replicaRebase(Job.Base);
  case WriterJob::Kind::ReplBootstrap: {
    Status Reset = Core.rebootstrap(Job.Bytes, Job.Base);
    if (Reset.ok())
      Mutated = true;
    return Reset;
  }
  case WriterJob::Kind::Client:
    break;
  }
  return Status::error(ErrorCode::Internal, "bad internal job kind");
}

Status NetServer::submitInternal(WriterJob Job) {
  auto Wait = std::make_shared<InternalWait>();
  Job.Wait = Wait;
  {
    std::lock_guard<std::mutex> Lock(WriterMutex);
    if (WriterStop)
      return Status::error(ErrorCode::FailedPrecondition,
                           "server is stopping");
    Jobs.push_back(std::move(Job));
  }
  WriterCv.notify_one();
  std::unique_lock<std::mutex> Lock(Wait->M);
  Wait->Cv.wait(Lock, [&] { return Wait->Done; });
  return Wait->Result;
}

Status NetServer::applyReplicatedRecords(
    std::vector<std::pair<uint64_t, std::string>> Records) {
  WriterJob Job;
  Job.Kind = WriterJob::Kind::ReplApply;
  Job.Records = std::move(Records);
  return submitInternal(std::move(Job));
}

Status NetServer::applyReplicaRebase(uint64_t NewBase) {
  WriterJob Job;
  Job.Kind = WriterJob::Kind::ReplRebase;
  Job.Base = NewBase;
  return submitInternal(std::move(Job));
}

Status NetServer::applyReplicaBootstrap(std::vector<uint8_t> Bytes,
                                        uint64_t Base) {
  WriterJob Job;
  Job.Kind = WriterJob::Kind::ReplBootstrap;
  Job.Bytes = std::move(Bytes);
  Job.Base = Base;
  return submitInternal(std::move(Job));
}

void NetServer::writerLoop() {
  for (;;) {
    std::vector<WriterJob> Batch;
    {
      std::unique_lock<std::mutex> Lock(WriterMutex);
      WriterCv.wait(Lock, [this] { return WriterStop || !Jobs.empty(); });
      if (WriterStop && Jobs.empty())
        return;
      while (!Jobs.empty()) {
        Batch.push_back(std::move(Jobs.front()));
        Jobs.pop_front();
      }
      WriterBusy = true;
    }

    // WriterOut collects this batch's verb replies interleaved (in
    // order) with the replication events the core's sink emits while
    // the handlers run.
    WriterOut.clear();
    std::vector<std::pair<std::shared_ptr<InternalWait>, Status>> Notify;
    bool Mutated = false;
    for (WriterJob &Job : Batch) {
      if (Job.Kind != WriterJob::Kind::Client) {
        Status Internal = runInternalJob(Job, Mutated);
        Notify.emplace_back(Job.Wait, std::move(Internal));
        continue;
      }
      Completion Comp;
      Comp.Fd = Job.Fd;
      Comp.Gen = Job.Gen;
      handleClientJob(Job, Comp, Mutated);
      ++WriterOps;
      if (!Opts.MetricsOut.empty() && Opts.MetricsEvery > 0 &&
          WriterOps % Opts.MetricsEvery == 0) {
        Status Dumped = Core.dumpMetricsTo(Opts.MetricsOut);
        if (!Dumped)
          std::fprintf(stderr, "scserved: metrics dump failed: %s\n",
                       Dumped.toString().c_str());
      }
      WriterOut.push_back(std::move(Comp));
    }
    // Ack-after-publish: the epoch containing this batch's additions is
    // visible to every reader before any `ok added` goes out (and before
    // any replicated-apply waiter resumes), so a client that saw the ack
    // reads its own write.
    if (Mutated)
      republish();

    {
      std::lock_guard<std::mutex> Lock(WriterMutex);
      for (Completion &Comp : WriterOut)
        Done.push_back(std::move(Comp));
      WriterBusy = false;
    }
    WriterOut.clear();
    for (auto &Entry : Notify) {
      if (!Entry.first)
        continue;
      {
        std::lock_guard<std::mutex> Lock(Entry.first->M);
        Entry.first->Result = std::move(Entry.second);
        Entry.first->Done = true;
      }
      Entry.first->Cv.notify_all();
    }
    uint64_t One = 1;
    (void)!::write(WakeFd, &One, sizeof(One));
    // A handled `shutdown` does NOT stop this lane: jobs other
    // connections enqueue during the drain still need completions (the
    // closed WAL makes further adds refuse on its own). The loop thread
    // stops the lane once the drain reaches quiescence.
  }
}
