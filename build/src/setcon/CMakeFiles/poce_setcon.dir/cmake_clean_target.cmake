file(REMOVE_RECURSE
  "libpoce_setcon.a"
)
