//===- tests/integration_test.cpp - End-to-end integration tests -----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-module integration: generated benchmark programs run through the
/// full pipeline under every configuration, checking the relationships the
/// evaluation section depends on (work orderings, detection bounds,
/// oracle acyclicity, and the paper's qualitative claims at small scale).
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "graph/TarjanSCC.h"
#include "setcon/Oracle.h"
#include "workload/Suite.h"

#include <gtest/gtest.h>

using namespace poce;
using namespace poce::andersen;

namespace {

struct PipelineRun {
  std::unique_ptr<workload::PreparedProgram> Program;
  ConstructorTable Constructors;
  Oracle WitnessOracle;
  AnalysisResult SFPlain, IFPlain, SFOnline, IFOnline, SFOracle, IFOracle;
};

std::unique_ptr<PipelineRun> runPipeline(uint32_t TargetAst, uint64_t Seed) {
  auto Run = std::make_unique<PipelineRun>();
  workload::ProgramSpec Spec;
  Spec.Name = "integration";
  Spec.TargetAstNodes = TargetAst;
  Spec.Seed = Seed;
  Run->Program = workload::prepareProgram(Spec);
  EXPECT_TRUE(Run->Program->Ok);

  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Run->WitnessOracle = buildOracle(makeGenerator(Run->Program->Unit),
                                   Run->Constructors, Base);

  auto Analyze = [&](GraphForm Form, CycleElim Elim) {
    return runAnalysis(Run->Program->Unit, Run->Constructors,
                       makeConfig(Form, Elim),
                       Elim == CycleElim::Oracle ? &Run->WitnessOracle
                                                 : nullptr,
                       /*ExtractPointsTo=*/false);
  };
  Run->SFPlain = Analyze(GraphForm::Standard, CycleElim::None);
  Run->IFPlain = Analyze(GraphForm::Inductive, CycleElim::None);
  Run->SFOnline = Analyze(GraphForm::Standard, CycleElim::Online);
  Run->IFOnline = Analyze(GraphForm::Inductive, CycleElim::Online);
  Run->SFOracle = Analyze(GraphForm::Standard, CycleElim::Oracle);
  Run->IFOracle = Analyze(GraphForm::Inductive, CycleElim::Oracle);
  return Run;
}

} // namespace

class PipelineTest : public testing::TestWithParam<uint32_t> {};

TEST_P(PipelineTest, EvaluationShapeHolds) {
  auto Run = runPipeline(GetParam(), GetParam() * 7919);

  // Nothing aborted at these sizes.
  for (const AnalysisResult *Result :
       {&Run->SFPlain, &Run->IFPlain, &Run->SFOnline, &Run->IFOnline,
        &Run->SFOracle, &Run->IFOracle})
    EXPECT_FALSE(Result->Stats.Aborted);

  // Online elimination can only reduce work relative to plain, per form.
  EXPECT_LE(Run->IFOnline.Stats.Work, Run->IFPlain.Stats.Work);
  EXPECT_LE(Run->SFOnline.Stats.Work, Run->SFPlain.Stats.Work);

  // Perfect elimination is far below the plain runs. (It is not strictly
  // below the online runs: witness substitution changes the random order
  // assignment, which perturbs inductive-form edge orientations by a few
  // percent either way.)
  EXPECT_LE(Run->IFOracle.Stats.Work, Run->IFPlain.Stats.Work);
  EXPECT_LE(Run->SFOracle.Stats.Work, Run->SFPlain.Stats.Work);
  EXPECT_LE(Run->IFOracle.Stats.Work, Run->IFOnline.Stats.Work * 3 / 2);
  EXPECT_LE(Run->SFOracle.Stats.Work, Run->SFOnline.Stats.Work * 3 / 2);

  // Oracle runs never collapse (their graphs are already acyclic) and
  // never substitute more than the ground truth allows.
  EXPECT_EQ(Run->IFOracle.Stats.VarsEliminated, 0u);
  EXPECT_EQ(Run->SFOracle.Stats.VarsEliminated, 0u);
  EXPECT_EQ(Run->IFOracle.Stats.OracleSubstitutions,
            Run->WitnessOracle.eliminableVars());

  // Partial detection never beats the oracle ground truth.
  EXPECT_LE(Run->IFOnline.Stats.VarsEliminated,
            Run->WitnessOracle.eliminableVars());
  EXPECT_LE(Run->SFOnline.Stats.VarsEliminated,
            Run->WitnessOracle.eliminableVars());

  // IF exposes at least part of every cyclic program (there are cycles in
  // these workloads by construction).
  EXPECT_GT(Run->WitnessOracle.eliminableVars(), 0u);
  EXPECT_GT(Run->IFOnline.Stats.VarsEliminated, 0u);
}

TEST_P(PipelineTest, DetectionRateOrdering) {
  auto Run = runPipeline(GetParam(), GetParam() * 104729);
  // The paper's Figure 11: IF detects about twice the fraction SF does.
  // At small scale we only require IF >= SF.
  EXPECT_GE(Run->IFOnline.Stats.VarsEliminated,
            Run->SFOnline.Stats.VarsEliminated);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineTest,
                         testing::Values(1500u, 4000u, 9000u),
                         [](const auto &Info) {
                           return "ast" + std::to_string(Info.param);
                         });

TEST(IntegrationTest, LargerProgramsShowIFOnlineAdvantage) {
  // The headline claim at moderate scale: IF-Online does less work than
  // SF-Plain, and IF-Plain does the most work of all four.
  auto Run = runPipeline(20000, 31337);
  EXPECT_LT(Run->IFOnline.Stats.Work, Run->SFPlain.Stats.Work);
  EXPECT_GT(Run->IFPlain.Stats.Work, Run->SFPlain.Stats.Work);
}

TEST(IntegrationTest, WorkCapProducesAbortedRuns) {
  workload::ProgramSpec Spec;
  Spec.Name = "capped";
  Spec.TargetAstNodes = 6000;
  Spec.Seed = 5;
  auto Program = workload::prepareProgram(Spec);
  ASSERT_TRUE(Program->Ok);
  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::None);
  Options.MaxWork = 1000;
  AnalysisResult Result = runAnalysis(Program->Unit, Constructors, Options,
                                      nullptr, /*ExtractPointsTo=*/false);
  EXPECT_TRUE(Result.Stats.Aborted);
  EXPECT_GE(Result.Stats.Work, 1000u);
}

TEST(IntegrationTest, SolverStatisticsConsistency) {
  auto Run = runPipeline(3000, 777);
  for (const AnalysisResult *Result :
       {&Run->SFPlain, &Run->IFPlain, &Run->SFOnline, &Run->IFOnline}) {
    const SolverStats &Stats = Result->Stats;
    EXPECT_EQ(Stats.distinctAdds(),
              Stats.Work - Stats.RedundantAdds - Stats.SelfEdges);
    EXPECT_LE(Stats.RedundantAdds + Stats.SelfEdges, Stats.Work);
    EXPECT_LE(Stats.InitialEdges, Stats.Work);
    EXPECT_GT(Stats.ConstraintsProcessed, 0u);
    // Final edges never exceed distinct additions.
    EXPECT_LE(Result->FinalEdges, Stats.distinctAdds());
  }
}

TEST(IntegrationTest, InitialCyclesAreMinorityOfFinalCycles) {
  // Paper Section 2.5: "in the majority of our benchmarks, less than 20%
  // of the variables in SCCs in the final graph also appear in SCCs in
  // the initial graph." Check the weaker directional claim: closure
  // discovers strictly more cyclic variables than the initial constraints
  // contain.
  workload::ProgramSpec Spec;
  Spec.Name = "cycgrowth";
  Spec.TargetAstNodes = 8000;
  Spec.Seed = 11;
  auto Program = workload::prepareProgram(Spec);
  ASSERT_TRUE(Program->Ok);

  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Options.RecordVarVar = true;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options);
  ConstraintGenerator Generator(Solver);
  Generator.run(Program->Unit);
  Solver.finalize();

  Digraph Initial(Solver.numCreations());
  for (auto [From, To] : Solver.recordedInitialVarVar())
    Initial.addEdge(From, To);
  uint32_t InitialCyclic = computeSCCs(Initial).numNodesInNontrivialSCCs();

  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O =
      buildOracle(makeGenerator(Program->Unit), Constructors, Base);
  EXPECT_LT(InitialCyclic, O.varsInNontrivialClasses());
}

TEST(IntegrationTest, DriverStyleFileAnalysis) {
  // Exercise the file-oriented entry point the anders tool uses.
  const char *Source = "int x; int *p;\n"
                       "int main(void) { p = &x; return 0; }\n";
  minic::TranslationUnit Unit;
  std::vector<std::string> Errors;
  ASSERT_TRUE(parseSource(Source, Unit, &Errors, "file.c"));
  ConstructorTable Constructors;
  AnalysisResult Result = runAnalysis(
      Unit, Constructors, makeConfig(GraphForm::Inductive, CycleElim::Online));
  EXPECT_EQ(Result.pointsTo("p"), std::vector<std::string>{"x"});
  std::vector<std::string> BadErrors;
  minic::TranslationUnit BadUnit;
  EXPECT_FALSE(parseSource("int x", BadUnit, &BadErrors, "bad.c"));
  EXPECT_FALSE(BadErrors.empty());
}
