//===- graph/DotWriter.cpp - Graphviz output -------------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/DotWriter.h"

using namespace poce;

static const char *const SCCColors[] = {"lightblue",  "lightsalmon",
                                        "palegreen",  "plum",
                                        "lightyellow", "lightcyan"};

std::string poce::writeDot(const Digraph &G, const DotOptions &Options) {
  std::string Out;
  Out += "digraph \"" + Options.GraphName + "\" {\n";
  Out += "  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";

  SCCResult SCCs;
  if (Options.ColorSCCs)
    SCCs = computeSCCs(G);

  for (uint32_t Node = 0; Node != G.numNodes(); ++Node) {
    std::string Label =
        Options.Label ? Options.Label(Node) : std::to_string(Node);
    Out += "  n" + std::to_string(Node) + " [label=\"" + Label + "\"";
    if (Options.ColorSCCs) {
      uint32_t Component = SCCs.ComponentOf[Node];
      if (SCCs.Components[Component].size() >= 2) {
        const char *Color =
            SCCColors[Component % (sizeof(SCCColors) / sizeof(SCCColors[0]))];
        Out += ", style=filled, fillcolor=";
        Out += Color;
      }
    }
    Out += "];\n";
  }
  for (uint32_t Node = 0; Node != G.numNodes(); ++Node)
    for (uint32_t Succ : G.successors(Node))
      Out += "  n" + std::to_string(Node) + " -> n" + std::to_string(Succ) +
             ";\n";
  Out += "}\n";
  return Out;
}
