//===- setcon/Term.h - Hash-consed set expressions --------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set expressions of the constraint language (Section 2.1):
///
///   L, R ::= X | c(se_1, ..., se_n) | 0 | 1
///
/// Expressions are hash-consed into dense 32-bit ids by the TermTable, so
/// structural equality is id equality and adjacency lists can store plain
/// integers. Ids 0 and 1 are always the constants Zero and One.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_TERM_H
#define POCE_SETCON_TERM_H

#include "setcon/Constructor.h"
#include "support/SmallVector.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace poce {

/// Dense id of a set variable within one solver instance.
using VarId = uint32_t;

/// Dense id of a hash-consed set expression.
using ExprId = uint32_t;

/// Kind of a set expression node.
enum class ExprKind : uint8_t {
  Zero, ///< The empty set 0.
  One,  ///< The universal set 1.
  Var,  ///< A set variable.
  Cons, ///< A constructed term c(se_1, ..., se_n).
};

/// Hash-consing table for set expressions. Owns the expression pool; ids
/// are assigned in first-construction order, so deterministic input yields
/// deterministic ids.
class TermTable {
public:
  explicit TermTable(ConstructorTable &Constructors);

  /// The constant 0 (always id 0).
  ExprId zero() const { return 0; }
  /// The constant 1 (always id 1).
  ExprId one() const { return 1; }

  /// Returns the expression denoting variable \p Var.
  ExprId var(VarId Var);

  /// Returns the expression c(Args...). Arity must match the constructor's
  /// signature.
  ExprId cons(ConsId Cons, const SmallVectorImpl<ExprId> &Args);

  /// Convenience overload for literal argument lists.
  ExprId cons(ConsId Cons, std::initializer_list<ExprId> Args);

  ExprKind kind(ExprId Id) const { return Kinds[Id]; }
  bool isConstructed(ExprId Id) const {
    ExprKind K = kind(Id);
    return K == ExprKind::Cons || K == ExprKind::Zero || K == ExprKind::One;
  }

  /// Variable of a Var expression.
  VarId varOf(ExprId Id) const;

  /// Constructor of a Cons expression.
  ConsId consOf(ExprId Id) const;

  /// Arguments of a Cons expression.
  const ExprId *argsOf(ExprId Id) const;
  unsigned numArgs(ExprId Id) const;

  /// Renders \p Id for diagnostics, using \p VarName to label variables.
  std::string str(ExprId Id,
                  const std::function<std::string(VarId)> &VarName) const;

  uint32_t size() const { return static_cast<uint32_t>(Kinds.size()); }

  const ConstructorTable &constructors() const { return Constructors; }

  /// Mutable access for clients that register constructors while
  /// generating constraints (e.g. per-location name constructors).
  ConstructorTable &mutableConstructors() { return Constructors; }

private:
  ExprId allocate(ExprKind Kind, uint32_t Payload, uint32_t ArgsBegin,
                  uint32_t NumArgs);

  ConstructorTable &Constructors;

  std::vector<ExprKind> Kinds;
  /// VarId for Var nodes, ConsId for Cons nodes, unused otherwise.
  std::vector<uint32_t> Payloads;
  /// (offset, count) into ArgPool for Cons nodes.
  std::vector<std::pair<uint32_t, uint32_t>> ArgSlices;
  std::vector<ExprId> ArgPool;

  /// Var -> ExprId cache.
  std::vector<ExprId> VarExprs;
  /// Structural hash -> candidate Cons ids (full comparison resolves
  /// collisions).
  std::unordered_map<uint64_t, SmallVector<ExprId, 2>> ConsIndex;
};

} // namespace poce

#endif // POCE_SETCON_TERM_H
