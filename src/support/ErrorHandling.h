//===- support/ErrorHandling.h - Fatal error reporting ----------*- C++ -*-===//
//
// Part of the poce project, a reproduction of "Partial Online Cycle
// Elimination in Inclusion Constraint Graphs" (PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and the poce_unreachable marker for control flow
/// that must never be reached if program invariants hold.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_ERRORHANDLING_H
#define POCE_SUPPORT_ERRORHANDLING_H

#include <string>

namespace poce {

/// Reports a fatal usage or environment error to stderr and exits with a
/// nonzero status. The message should follow tool style: lowercase first
/// word, no trailing period.
[[noreturn]] void reportFatalError(const std::string &Reason);

/// Internal implementation of the poce_unreachable macro; prints the
/// message with its source location and aborts.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace poce

/// Marks a point in code that should never be reached. Unlike assert, the
/// check is kept in all build modes.
#define poce_unreachable(msg)                                                  \
  ::poce::unreachableInternal(msg, __FILE__, __LINE__)

#endif // POCE_SUPPORT_ERRORHANDLING_H
