//===- bench/micro_solver.cpp - Microbenchmarks (google-benchmark) ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the primitive operations that dominate constraint
/// resolution: hash-set membership, sparse-bitvector unions, union-find,
/// term interning, atomic edge insertion and closure, difference
/// propagation, online cycle detection/collapse, least solution
/// computation, and frontend throughput.
///
/// Run with no arguments (or the usual google-benchmark flags) for the
/// microbenchmark suite. Run with --emit_trajectory[=path] to instead
/// A/B the bitvector/difference-propagation hot paths against the seed
/// algorithms on large random constraint systems and record the result as
/// JSON (default path: BENCH_micro_solver.json). Each invocation appends
/// one timestamped run to the file's "runs" array (a pre-existing
/// flat-format file is migrated to the first run), so successive runs form
/// a trajectory. Trajectory mode honors POCE_BENCH_SCALE,
/// POCE_BENCH_REPEATS (best-of-N, default 3), and POCE_BENCH_THREADS
/// (lanes for the thread-scaling entries; default 4, 0 = hardware).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "andersen/Andersen.h"
#include "minic/Lexer.h"
#include "minic/Parser.h"
#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "setcon/ConstraintSolver.h"
#include "support/DenseU64Set.h"
#include "support/Metrics.h"
#include "support/PRNG.h"
#include "support/SparseBitVector.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/UnionFind.h"
#include "workload/ProgramGenerator.h"
#include "workload/RandomConstraints.h"
#include "workload/Suite.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>

using namespace poce;

//===----------------------------------------------------------------------===//
// Support primitives
//===----------------------------------------------------------------------===//

static void BM_DenseSetInsert(benchmark::State &State) {
  PRNG Rng(1);
  std::vector<uint64_t> Keys(static_cast<size_t>(State.range(0)));
  for (uint64_t &Key : Keys)
    Key = Rng.nextU64() >> 1;
  for (auto _ : State) {
    DenseU64Set Set;
    for (uint64_t Key : Keys)
      benchmark::DoNotOptimize(Set.insert(Key));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_DenseSetInsert)->Arg(1000)->Arg(100000);

static void BM_DenseSetLookupHit(benchmark::State &State) {
  PRNG Rng(2);
  DenseU64Set Set;
  std::vector<uint64_t> Keys(100000);
  for (uint64_t &Key : Keys) {
    Key = Rng.nextU64() >> 1;
    Set.insert(Key);
  }
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Set.contains(Keys[I++ % Keys.size()]));
  }
}
BENCHMARK(BM_DenseSetLookupHit);

static void BM_SparseBitVectorSet(benchmark::State &State) {
  // Clustered id space, like hash-consed ExprIds.
  PRNG Rng(21);
  std::vector<uint32_t> Ids(static_cast<size_t>(State.range(0)));
  for (uint32_t &Id : Ids)
    Id = static_cast<uint32_t>(Rng.nextBelow(4 * Ids.size()));
  for (auto _ : State) {
    SparseBitVector S;
    for (uint32_t Id : Ids)
      benchmark::DoNotOptimize(S.testAndSet(Id));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SparseBitVectorSet)->Arg(1000)->Arg(100000);

static void BM_SparseBitVectorUnion(benchmark::State &State) {
  // Word-level union of partially overlapping sets — the inner loop of
  // both difference propagation and the least-solution pass.
  PRNG Rng(22);
  const size_t N = static_cast<size_t>(State.range(0));
  SparseBitVector Base, Incoming;
  for (size_t I = 0; I != N; ++I) {
    Base.set(static_cast<uint32_t>(Rng.nextBelow(8 * N)));
    Incoming.set(static_cast<uint32_t>(Rng.nextBelow(8 * N)));
  }
  for (auto _ : State) {
    SparseBitVector S;
    S.unionWith(Base);
    uint64_t Words = 0;
    benchmark::DoNotOptimize(S.unionWith(Incoming, &Words));
    benchmark::DoNotOptimize(Words);
  }
  State.SetItemsProcessed(State.iterations() * 2 * N);
}
BENCHMARK(BM_SparseBitVectorUnion)->Arg(1000)->Arg(50000);

static void BM_SparseBitVectorUnionInPlace(benchmark::State &State) {
  // Steady-state union where the target already covers every RHS element,
  // so every iteration takes the aligned in-place branch (unrolled to two
  // elements — four 64-bit words — per step). This is the shape of
  // repeated difference-propagation pushes into a mature solution set.
  PRNG Rng(23);
  const size_t N = static_cast<size_t>(State.range(0));
  SparseBitVector Base, Incoming;
  for (size_t I = 0; I != N; ++I) {
    uint32_t Id = static_cast<uint32_t>(Rng.nextBelow(4 * N));
    Incoming.set(Id);
    Base.set(Id); // Superset coverage: no element merge ever needed.
    Base.set(static_cast<uint32_t>(Rng.nextBelow(4 * N)));
  }
  SparseBitVector S = Base;
  for (auto _ : State) {
    uint64_t Words = 0;
    benchmark::DoNotOptimize(S.unionWith(Incoming, &Words));
    benchmark::DoNotOptimize(Words);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_SparseBitVectorUnionInPlace)->Arg(1000)->Arg(50000);

static void BM_UnionFind(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  PRNG Rng(3);
  for (auto _ : State) {
    UnionFind UF;
    UF.growTo(N);
    for (uint32_t I = 0; I != N; ++I)
      UF.unite(static_cast<uint32_t>(Rng.nextBelow(N)),
               static_cast<uint32_t>(Rng.nextBelow(N)));
    benchmark::DoNotOptimize(UF.find(0));
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_UnionFind)->Arg(10000);

static void BM_TermInterning(benchmark::State &State) {
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConsId C = Constructors.getOrCreate(
        "c", {Variance::Covariant, Variance::Covariant});
    for (uint32_t I = 0; I != 1000; ++I)
      benchmark::DoNotOptimize(
          Terms.cons(C, {Terms.var(I), Terms.var(I / 2)}));
    // Second pass hits the intern cache.
    for (uint32_t I = 0; I != 1000; ++I)
      benchmark::DoNotOptimize(
          Terms.cons(C, {Terms.var(I), Terms.var(I / 2)}));
  }
  State.SetItemsProcessed(State.iterations() * 2000);
}
BENCHMARK(BM_TermInterning);

//===----------------------------------------------------------------------===//
// Solver operations
//===----------------------------------------------------------------------===//

static void BM_EdgeInsertionChain(benchmark::State &State) {
  // A source propagated down a long variable chain: one closure-driven
  // addition per edge.
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::None));
    ExprId S = Terms.cons(Constructors.getOrCreate("s", {}), {});
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    Solver.addConstraint(S, Terms.var(Vars[0]));
    for (uint32_t I = 0; I + 1 != N; ++I)
      Solver.addConstraint(Terms.var(Vars[I]), Terms.var(Vars[I + 1]));
    benchmark::DoNotOptimize(Solver.stats().Work);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_EdgeInsertionChain)->Arg(1000)->Arg(10000);

static void BM_SFClosure(benchmark::State &State) {
  // Standard-form closure over a random system; Arg(1) uses batched
  // difference propagation, Arg(0) the element-wise seed scheme. The gap
  // between the two is the win from delta-only pushes.
  PRNG Rng(17);
  RandomConstraintShape Shape =
      randomConstraintShape(3000, 2000, 2.0 / 3000, Rng);
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::None);
  Options.DiffProp = State.range(0) != 0;
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options);
    workload::emitRandomConstraints(Shape, Solver);
    benchmark::DoNotOptimize(Solver.stats().Work);
  }
  State.SetItemsProcessed(State.iterations() * Shape.VarVar.size());
}
BENCHMARK(BM_SFClosure)->Arg(0)->Arg(1);

static void BM_OnlineDetectionOverhead(benchmark::State &State) {
  // Acyclic random insertions: measures the pure overhead of running the
  // partial chain search on every variable-variable insertion.
  const uint32_t N = 2000;
  PRNG Rng(7);
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t I = 0; I != 4 * N; ++I) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(N));
    if (A < B)
      Edges.push_back({A, B}); // Forward only: acyclic.
  }
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    for (auto [A, B] : Edges)
      Solver.addConstraint(Terms.var(Vars[A]), Terms.var(Vars[B]));
    benchmark::DoNotOptimize(Solver.stats().CycleSearchSteps);
  }
  State.SetItemsProcessed(State.iterations() * Edges.size());
}
BENCHMARK(BM_OnlineDetectionOverhead);

static void BM_CycleCollapse(benchmark::State &State) {
  // Insert rings that are detected and collapsed.
  const uint32_t N = 1000;
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    for (uint32_t Ring = 0; Ring + 10 <= N; Ring += 10) {
      for (uint32_t I = 0; I != 10; ++I)
        Solver.addConstraint(Terms.var(Vars[Ring + I]),
                             Terms.var(Vars[Ring + (I + 1) % 10]));
    }
    benchmark::DoNotOptimize(Solver.stats().VarsEliminated);
  }
}
BENCHMARK(BM_CycleCollapse);

static void BM_Compact(benchmark::State &State) {
  // Compaction cost after a collapse-heavy solve.
  PRNG Rng(13);
  RandomConstraintShape Shape =
      randomConstraintShape(3000, 2000, 2.0 / 3000, Rng);
  for (auto _ : State) {
    State.PauseTiming();
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, makeConfig(GraphForm::Inductive,
                                              CycleElim::Online));
    workload::emitRandomConstraints(Shape, Solver);
    State.ResumeTiming();
    benchmark::DoNotOptimize(Solver.compact());
  }
}
BENCHMARK(BM_Compact);

static void BM_LeastSolutionIF(benchmark::State &State) {
  // Arg(1) is the bitvector pass (word-level unions plus lazy views for
  // every variable); Arg(0) replays the seed's vector concat+sort+unique
  // algorithm via the retained reference oracle.
  PRNG Rng(11);
  RandomConstraintShape Shape =
      randomConstraintShape(2000, 1300, 1.0 / 2000, Rng);
  const bool Bitvector = State.range(0) != 0;
  for (auto _ : State) {
    State.PauseTiming();
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    workload::emitRandomConstraints(Shape, Solver);
    State.ResumeTiming();
    size_t Total = 0;
    if (Bitvector) {
      Solver.finalize();
      for (VarId Var = 0; Var != Solver.numVars(); ++Var)
        Total += Solver.leastSolution(Var).size();
    } else {
      for (const std::vector<ExprId> &LS : Solver.referenceLeastSolutions())
        Total += LS.size();
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_LeastSolutionIF)->Arg(0)->Arg(1);

//===----------------------------------------------------------------------===//
// Frontend and end-to-end
//===----------------------------------------------------------------------===//

static std::string &benchProgram() {
  static std::string Source = [] {
    workload::ProgramSpec Spec;
    Spec.Name = "micro";
    Spec.TargetAstNodes = 8000;
    Spec.Seed = 99;
    return workload::generateProgram(Spec);
  }();
  return Source;
}

static void BM_LexerThroughput(benchmark::State &State) {
  const std::string &Source = benchProgram();
  for (auto _ : State) {
    minic::Diagnostics Diags;
    minic::Lexer Lexer(Source, Diags);
    benchmark::DoNotOptimize(Lexer.lexAll().size());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_LexerThroughput);

static void BM_ParserThroughput(benchmark::State &State) {
  const std::string &Source = benchProgram();
  for (auto _ : State) {
    minic::TranslationUnit Unit;
    andersen::parseSource(Source, Unit);
    benchmark::DoNotOptimize(Unit.numNodes());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParserThroughput);

static void BM_EndToEndIFOnline(benchmark::State &State) {
  minic::TranslationUnit Unit;
  andersen::parseSource(benchProgram(), Unit);
  for (auto _ : State) {
    ConstructorTable Constructors;
    andersen::AnalysisResult Result = andersen::runAnalysis(
        Unit, Constructors,
        makeConfig(GraphForm::Inductive, CycleElim::Online), nullptr,
        /*ExtractPointsTo=*/false);
    benchmark::DoNotOptimize(Result.Stats.Work);
  }
}
BENCHMARK(BM_EndToEndIFOnline);

//===----------------------------------------------------------------------===//
// Trajectory mode: --emit_trajectory[=path]
//===----------------------------------------------------------------------===//

namespace {

struct TrajectoryConfig {
  const char *Name;
  GraphForm Form;
  CycleElim Elim;
  uint32_t NumVars;
  uint32_t NumCons;
  double Degree; ///< Expected out-degree; edge probability is Degree/NumVars.
  uint64_t Seed;
  /// Emission order. facts_first loads every source/sink constraint before
  /// any variable-variable edge, so each new edge ships the accumulated
  /// source set as one word-level batch (the bulk-load pattern difference
  /// propagation is built for). edges_first is the cascade worst case: the
  /// graph exists before any source arrives and every delta has size one.
  bool FactsFirst;
};

/// Like workload::emitRandomConstraints but with a selectable constraint
/// order (the library emitter is pinned to edges-first for the golden
/// tests).
void emitShapeOrdered(const RandomConstraintShape &Shape,
                      ConstraintSolver &Solver, bool FactsFirst) {
  TermTable &Terms = Solver.terms();
  ConstructorTable &Constructors = Terms.mutableConstructors();
  std::vector<ExprId> Vars, Sources, Sinks;
  Vars.reserve(Shape.NumVars);
  for (uint32_t I = 0; I != Shape.NumVars; ++I)
    Vars.push_back(Terms.var(Solver.freshVar("X" + std::to_string(I))));
  Sources.reserve(Shape.NumSources);
  for (uint32_t I = 0; I != Shape.NumSources; ++I)
    Sources.push_back(Terms.cons(
        Constructors.getOrCreate("src" + std::to_string(I), {}), {}));
  Sinks.reserve(Shape.NumSinks);
  for (uint32_t I = 0; I != Shape.NumSinks; ++I)
    Sinks.push_back(Terms.cons(
        Constructors.getOrCreate("snk" + std::to_string(I), {}), {}));

  auto emitFacts = [&] {
    for (const auto &[Source, Var] : Shape.SourceVar)
      Solver.addConstraint(Sources[Source], Vars[Var]);
    for (const auto &[Var, Sink] : Shape.VarSink)
      Solver.addConstraint(Vars[Var], Sinks[Sink]);
  };
  auto emitEdges = [&] {
    for (const auto &[From, To] : Shape.VarVar)
      Solver.addConstraint(Vars[From], Vars[To]);
  };
  if (FactsFirst) {
    emitFacts();
    emitEdges();
  } else {
    emitEdges();
    emitFacts();
  }
}

/// One A/B measurement: the optimized paths (difference propagation plus
/// bitvector least solutions) against the seed algorithms (element-wise
/// propagation plus the retained reference least-solution pass).
struct TrajectoryResult {
  double WallSeconds = 0;     ///< Optimized paths, best of N.
  double BaselineSeconds = 0; ///< Seed-style paths, best of N.
  uint64_t Work = 0;
  uint64_t Edges = 0;
  SolverStats Stats;       ///< Optimized-run counters (hot paths).
  size_t SolutionBits = 0; ///< Sink to keep the LS queries observable.
};

TrajectoryResult measureTrajectory(const TrajectoryConfig &Config,
                                   unsigned Repeats) {
  PRNG Rng(Config.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Config.NumVars, Config.NumCons,
      Config.Degree / std::max<uint32_t>(Config.NumVars, 1), Rng);

  TrajectoryResult Out;
  auto solve = [&](bool Optimized) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Config.Form, Config.Elim, Config.Seed);
    Options.DiffProp = Optimized;
    ConstraintSolver Solver(Terms, Options);
    emitShapeOrdered(Shape, Solver, Config.FactsFirst);
    size_t Total = 0;
    if (Optimized) {
      Solver.finalize();
      for (VarId Var = 0; Var != Solver.numVars(); ++Var)
        Total += Solver.leastSolution(Var).size();
      Out.Work = Solver.stats().Work;
      Out.Edges = Solver.countFinalEdges();
      Out.Stats = Solver.stats();
    } else {
      for (const std::vector<ExprId> &LS : Solver.referenceLeastSolutions())
        Total += LS.size();
    }
    Out.SolutionBits = Total;
  };

  Out.WallSeconds = bestOfN(Repeats, [&] { solve(true); });
  Out.BaselineSeconds = bestOfN(Repeats, [&] { solve(false); });
  return Out;
}

/// Wave-closure A/B on one shape: the wave schedule (topo-ordered delta
/// sweeps over the CSR layout) against the eager worklist with the same
/// optimized propagation, and against the seed element-wise path. The
/// solution checksum must be identical across all three.
struct WaveResult {
  double WaveSeconds = 0;     ///< ClosureMode::Wave, best of N.
  double WorklistSeconds = 0; ///< ClosureMode::Worklist, same DiffProp.
  double SeedSeconds = 0;     ///< Seed element-wise reference path.
  uint64_t Work = 0;          ///< Wave-run Work counter.
  uint64_t Edges = 0;         ///< Wave-run final edges.
  uint64_t WorklistEdges = 0;
  SolverStats WaveStats;
  size_t WaveBits = 0;     ///< Folded solution sizes, wave run.
  size_t WorklistBits = 0; ///< Same, worklist run.
  size_t SeedBits = 0;     ///< Same, seed path.
};

WaveResult measureWave(const TrajectoryConfig &Config, unsigned Repeats) {
  PRNG Rng(Config.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Config.NumVars, Config.NumCons,
      Config.Degree / std::max<uint32_t>(Config.NumVars, 1), Rng);

  WaveResult Out;
  auto solveClosure = [&](ClosureMode Mode, size_t *Bits) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Config.Form, Config.Elim, Config.Seed);
    Options.Closure = Mode;
    ConstraintSolver Solver(Terms, Options);
    emitShapeOrdered(Shape, Solver, Config.FactsFirst);
    Solver.finalize();
    size_t Total = 0;
    for (VarId Var = 0; Var != Solver.numVars(); ++Var)
      Total += Solver.leastSolution(Var).size();
    *Bits = Total;
    if (Mode == ClosureMode::Wave) {
      Out.Work = Solver.stats().Work;
      Out.Edges = Solver.countFinalEdges();
      Out.WaveStats = Solver.stats();
    } else {
      Out.WorklistEdges = Solver.countFinalEdges();
    }
  };
  Out.WaveSeconds = bestOfN(
      Repeats, [&] { solveClosure(ClosureMode::Wave, &Out.WaveBits); });
  Out.WorklistSeconds = bestOfN(Repeats, [&] {
    solveClosure(ClosureMode::Worklist, &Out.WorklistBits);
  });
  Out.SeedSeconds = bestOfN(Repeats, [&] {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Config.Form, Config.Elim, Config.Seed);
    Options.DiffProp = false;
    ConstraintSolver Solver(Terms, Options);
    emitShapeOrdered(Shape, Solver, Config.FactsFirst);
    size_t Total = 0;
    for (const std::vector<ExprId> &LS : Solver.referenceLeastSolutions())
      Total += LS.size();
    Out.SeedBits = Total;
  });
  return Out;
}

/// Offline-preprocessing A/B on one shape: PreprocessMode::Offline (HVN
/// labeling + Nuutila SCC substitution before the first closure) against
/// the identical configuration without the pass. Solutions must be
/// bit-identical; final edge counts may differ (the pass shrinks the
/// graph, that is the point).
struct PreprocessResult {
  double OfflineSeconds = 0;  ///< Preprocess=Offline, best of N.
  double BaselineSeconds = 0; ///< Preprocess=None, same config.
  SolverStats OfflineStats;   ///< Offline-run counters.
  uint64_t OfflineEdges = 0;
  uint64_t BaselineEdges = 0;
  size_t OfflineBits = 0;  ///< Folded solution sizes, offline run.
  size_t BaselineBits = 0; ///< Same, pass off.
};

PreprocessResult measurePreprocess(const TrajectoryConfig &Config,
                                   unsigned Repeats) {
  PRNG Rng(Config.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Config.NumVars, Config.NumCons,
      Config.Degree / std::max<uint32_t>(Config.NumVars, 1), Rng);

  PreprocessResult Out;
  auto solve = [&](PreprocessMode Mode, size_t *Bits, uint64_t *Edges) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Config.Form, Config.Elim, Config.Seed);
    Options.Preprocess = Mode;
    ConstraintSolver Solver(Terms, Options);
    emitShapeOrdered(Shape, Solver, Config.FactsFirst);
    Solver.finalize();
    size_t Total = 0;
    for (VarId Var = 0; Var != Solver.numVars(); ++Var)
      Total += Solver.leastSolution(Var).size();
    *Bits = Total;
    *Edges = Solver.countFinalEdges();
    if (Mode == PreprocessMode::Offline)
      Out.OfflineStats = Solver.stats();
  };
  Out.OfflineSeconds = bestOfN(Repeats, [&] {
    solve(PreprocessMode::Offline, &Out.OfflineBits, &Out.OfflineEdges);
  });
  Out.BaselineSeconds = bestOfN(Repeats, [&] {
    solve(PreprocessMode::None, &Out.BaselineBits, &Out.BaselineEdges);
  });
  return Out;
}

/// One thread-scaling measurement: the same computation at 1 lane and at
/// \p Threads lanes. Checksum must match between the two variants (the
/// parallel paths are bit-identical by construction).
struct ScalingResult {
  double WallSeconds = 0;     ///< At the requested lane count, best of N.
  double BaselineSeconds = 0; ///< Single lane, best of N.
  uint64_t Checksum = 0;
  uint64_t BaselineChecksum = 0;
};

/// Times the IF least-solution pass (finalize + a full sweep of solution
/// queries) at 1 vs \p Threads lanes. Constraint emission and closure are
/// untimed — they are identical in both variants and the parallel layer
/// only touches the post-closure pass.
ScalingResult measureLSParallel(double Scale, unsigned Repeats,
                                unsigned Threads) {
  PRNG Rng(211);
  uint32_t NumVars =
      std::max<uint32_t>(8, static_cast<uint32_t>(6000 * Scale));
  uint32_t NumCons =
      std::max<uint32_t>(4, static_cast<uint32_t>(4000 * Scale));
  RandomConstraintShape Shape =
      randomConstraintShape(NumVars, NumCons, 1.5 / NumVars, Rng);

  auto timeOnce = [&](unsigned Lanes, uint64_t *Checksum) {
    double Best = -1;
    for (unsigned I = 0; I != Repeats; ++I) {
      ConstructorTable Constructors;
      TermTable Terms(Constructors);
      SolverOptions Options =
          makeConfig(GraphForm::Inductive, CycleElim::Online);
      Options.Threads = Lanes;
      ConstraintSolver Solver(Terms, Options);
      emitShapeOrdered(Shape, Solver, /*FactsFirst=*/false);
      Timer T;
      Solver.finalize();
      uint64_t Bits = 0;
      for (VarId Var = 0; Var != Solver.numVars(); ++Var)
        Bits += Solver.leastSolution(Var).size();
      double Elapsed = T.seconds();
      if (Best < 0 || Elapsed < Best)
        Best = Elapsed;
      *Checksum = Bits;
    }
    return Best;
  };

  ScalingResult Out;
  Out.BaselineSeconds = timeOnce(1, &Out.BaselineChecksum);
  Out.WallSeconds = timeOnce(Threads, &Out.Checksum);
  return Out;
}

/// Times a whole-suite batch solve (workload::solveSuite) at 1 vs
/// \p Threads lanes — the outer-level parallelism a build-system client
/// would use.
ScalingResult measureBatchSuite(double Scale, unsigned Repeats,
                                unsigned Threads) {
  std::vector<workload::ProgramSpec> Specs =
      workload::paperSuite(0.05 * Scale);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  auto timeOnce = [&](unsigned Lanes, uint64_t *Checksum) {
    double Best = -1;
    for (unsigned I = 0; I != Repeats; ++I) {
      Timer T;
      std::vector<workload::BatchSolveResult> Results =
          workload::solveSuite(Specs, Options, Lanes);
      double Elapsed = T.seconds();
      uint64_t Work = 0;
      for (const workload::BatchSolveResult &R : Results)
        Work += R.Result.Stats.Work;
      if (Best < 0 || Elapsed < Best)
        Best = Elapsed;
      *Checksum = Work;
    }
    return Best;
  };

  ScalingResult Out;
  Out.BaselineSeconds = timeOnce(1, &Out.BaselineChecksum);
  Out.WallSeconds = timeOnce(Threads, &Out.Checksum);
  return Out;
}

/// Serve-layer measurement: snapshot save/load wall time against a fresh
/// solve, and a mixed query batch (ls/pts/alias) through the QueryEngine
/// on both paths. The acceptance point is load+queries beating fresh
/// solve+queries end to end with identical answers.
struct ServeResult {
  double SaveSeconds = 0;      ///< serialize(), best of N.
  size_t SnapshotBytes = 0;
  double LoadSeconds = 0;      ///< deserialize + view materialization.
  double FreshSeconds = 0;     ///< emit + closure + view materialization.
  double LoadPathSeconds = 0;  ///< load + NumQueries mixed queries.
  double FreshPathSeconds = 0; ///< fresh solve + the same queries.
  uint64_t P50Micros = 0;      ///< Per-query latency on the load path.
  uint64_t P99Micros = 0;
  double HitRate = 0;          ///< Cache hits / queries on the load path.
  uint64_t Checksum = 0;       ///< Folded query answers, load path.
  uint64_t BaselineChecksum = 0; ///< Same, fresh path.
  unsigned NumQueries = 0;
};

ServeResult measureServe(double Scale, unsigned Repeats, unsigned Threads) {
  PRNG Rng(303);
  uint32_t NumVars =
      std::max<uint32_t>(8, static_cast<uint32_t>(6000 * Scale));
  uint32_t NumCons =
      std::max<uint32_t>(4, static_cast<uint32_t>(4000 * Scale));
  RandomConstraintShape Shape =
      randomConstraintShape(NumVars, NumCons, 1.5 / NumVars, Rng);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Options.Threads = Threads;

  ServeResult Out;
  Out.NumQueries = 1000;

  // The query script: a deterministic ls/pts/alias mix with enough repeat
  // touches that the LRU cache matters (clients hammer hot variables).
  PRNG QueryRng(404);
  struct Query {
    uint8_t Kind; // 0 = ls, 1 = pts, 2 = alias
    uint32_t A, B;
  };
  std::vector<Query> Queries(Out.NumQueries);
  for (Query &Q : Queries) {
    Q.Kind = static_cast<uint8_t>(QueryRng.nextBelow(3));
    // Zipf-ish skew: half the traffic goes to a 32-variable hot set.
    uint32_t Range = QueryRng.nextBelow(2) == 0
                         ? std::min<uint32_t>(32, NumVars)
                         : NumVars;
    Q.A = static_cast<uint32_t>(QueryRng.nextBelow(Range));
    Q.B = static_cast<uint32_t>(QueryRng.nextBelow(Range));
  }
  auto runQueries = [&](serve::QueryEngine &Engine,
                        std::vector<uint64_t> *Latencies) {
    uint64_t Checksum = 0;
    for (const Query &Q : Queries) {
      Timer T;
      VarId A = Engine.varOf("X" + std::to_string(Q.A));
      if (Q.Kind == 2) {
        VarId B = Engine.varOf("X" + std::to_string(Q.B));
        Checksum = Checksum * 31 + (Engine.alias(A, B) ? 1 : 0);
      } else if (Q.Kind == 1) {
        Checksum = Checksum * 31 + Engine.pts(A).size();
      } else {
        Checksum = Checksum * 31 + Engine.ls(A).size();
      }
      if (Latencies)
        Latencies->push_back(
            static_cast<uint64_t>(T.seconds() * 1e6));
    }
    return Checksum;
  };

  // One solved instance to snapshot.
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options);
  emitShapeOrdered(Shape, Solver, /*FactsFirst=*/false);
  Solver.finalize();

  std::vector<uint8_t> Bytes;
  Out.SaveSeconds = bestOfN(Repeats, [&] {
    Bytes.clear();
    Status St = serve::GraphSnapshot::serialize(Solver, Bytes);
    if (!St)
      std::fprintf(stderr, "error: snapshot_save: %s\n",
                   St.toString().c_str());
  });
  Out.SnapshotBytes = Bytes.size();

  Out.LoadSeconds = bestOfN(Repeats, [&] {
    serve::SolverBundle Bundle;
    Status St =
        serve::GraphSnapshot::deserialize(Bytes.data(), Bytes.size(), Bundle);
    if (!St)
      std::fprintf(stderr, "error: snapshot_load: %s\n",
                   St.toString().c_str());
    else
      Bundle.Solver->materializeAllViews();
  });
  Out.FreshSeconds = bestOfN(Repeats, [&] {
    ConstructorTable C;
    TermTable T(C);
    ConstraintSolver S(T, Options);
    emitShapeOrdered(Shape, S, /*FactsFirst=*/false);
    S.materializeAllViews();
  });

  std::vector<uint64_t> Latencies;
  double HitRate = 0;
  Out.LoadPathSeconds = bestOfN(Repeats, [&] {
    serve::SolverBundle Bundle;
    Status St =
        serve::GraphSnapshot::deserialize(Bytes.data(), Bytes.size(), Bundle);
    if (!St) {
      std::fprintf(stderr, "error: query_engine: %s\n",
                   St.toString().c_str());
      return;
    }
    Bundle.Solver->materializeAllViews();
    serve::QueryEngine Engine(std::move(Bundle));
    Latencies.clear();
    Out.Checksum = runQueries(Engine, &Latencies);
    HitRate = Engine.counters().Queries
                  ? static_cast<double>(Engine.counters().CacheHits) /
                        static_cast<double>(Engine.counters().Queries)
                  : 0;
  });
  Out.FreshPathSeconds = bestOfN(Repeats, [&] {
    serve::SolverBundle Fresh;
    Fresh.Constructors = std::make_unique<ConstructorTable>();
    Fresh.Terms = std::make_unique<TermTable>(*Fresh.Constructors);
    Fresh.Solver = std::make_unique<ConstraintSolver>(*Fresh.Terms, Options);
    emitShapeOrdered(Shape, *Fresh.Solver, /*FactsFirst=*/false);
    Fresh.Solver->materializeAllViews();
    serve::QueryEngine Engine(std::move(Fresh));
    Out.BaselineChecksum = runQueries(Engine, nullptr);
  });

  std::sort(Latencies.begin(), Latencies.end());
  if (!Latencies.empty()) {
    Out.P50Micros = Latencies[Latencies.size() / 2];
    Out.P99Micros = Latencies[std::min(Latencies.size() - 1,
                                       Latencies.size() * 99 / 100)];
  }
  Out.HitRate = HitRate;
  return Out;
}

/// Fault-tolerance measurements: what a budget abort costs (detect +
/// rollback to the pre-batch graph) and what warm recovery costs
/// (snapshot load + journal replay + view materialization) against a
/// fresh solve of the same constraints. Both assert the recovered state
/// is bit-identical to the expected one.
struct FaultToleranceResult {
  double AbortSeconds = 0;      ///< Budget breach -> rolled back, best of N.
  double AcceptSeconds = 0;     ///< The same line accepted, budgets off.
  bool AbortRolledBack = false; ///< Every repeat hit BudgetExceeded.
  bool AbortStateMatch = false; ///< Post-rollback bytes == pre-batch bytes.
  double RecoverySeconds = 0;   ///< load + replay + materialize, best of N.
  double RecoveryFreshSeconds = 0; ///< fresh solve + materialize.
  unsigned ReplayedLines = 0;
  bool RecoveryStateMatch = false; ///< Recovered bytes == fresh bytes.
};

FaultToleranceResult measureFaultTolerance(double Scale, unsigned Repeats) {
  PRNG Rng(505);
  uint32_t NumVars =
      std::max<uint32_t>(16, static_cast<uint32_t>(4000 * Scale));
  uint32_t NumCons =
      std::max<uint32_t>(4, static_cast<uint32_t>(2600 * Scale));
  RandomConstraintShape Shape =
      randomConstraintShape(NumVars, NumCons, 1.5 / NumVars, Rng);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  FaultToleranceResult Out;

  // --- budget_abort: a guaranteed-heavy line against an edge budget of
  // one. The chain makes the cascade deterministic: propagating a fresh
  // source down it costs one work unit per hop, far over budget.
  {
    serve::SolverBundle Bundle;
    Bundle.Constructors = std::make_unique<ConstructorTable>();
    Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
    Bundle.Solver =
        std::make_unique<ConstraintSolver>(*Bundle.Terms, Options);
    emitShapeOrdered(Shape, *Bundle.Solver, /*FactsFirst=*/false);
    Bundle.Solver->finalize();
    serve::QueryEngine Engine(std::move(Bundle));

    const unsigned ChainLen = 100;
    bool Ok = static_cast<bool>(Engine.addConstraint("cons heavysrc"));
    for (unsigned I = 0; Ok && I != ChainLen; ++I)
      Ok = static_cast<bool>(
          Engine.addConstraint("var C" + std::to_string(I)));
    for (unsigned I = 0; Ok && I + 1 != ChainLen; ++I)
      Ok = static_cast<bool>(
          Engine.addConstraint("C" + std::to_string(I) + " <= C" +
                               std::to_string(I + 1)));
    if (!Ok || !Engine.checkpointBase())
      return Out;

    Engine.solver().setBudgets(0, /*MaxEdgeBudget=*/1, 0);
    std::vector<uint8_t> PreBytes;
    if (!serve::GraphSnapshot::serialize(Engine.solver(), PreBytes))
      return Out;

    Out.AbortRolledBack = true;
    Out.AbortSeconds = bestOfN(Repeats, [&] {
      Status St = Engine.addConstraint("heavysrc <= C0");
      if (St.ok() || St.code() != ErrorCode::BudgetExceeded)
        Out.AbortRolledBack = false;
    });

    std::vector<uint8_t> PostBytes;
    if (serve::GraphSnapshot::serialize(Engine.solver(), PostBytes))
      Out.AbortStateMatch = PostBytes == PreBytes;

    // Baseline: the same line accepted with budgets off, measuring the
    // work the abort path walks away from. Each repeat restores the
    // pre-batch graph from PreBytes first (restore untimed, add timed).
    double Best = 1e300;
    for (unsigned I = 0; I != Repeats; ++I) {
      serve::SolverBundle Restored;
      if (!serve::GraphSnapshot::deserialize(PreBytes.data(),
                                             PreBytes.size(), Restored))
        return Out;
      Restored.Solver->setBudgets(0, 0, 0);
      serve::QueryEngine Accept(std::move(Restored));
      Timer T;
      if (!Accept.addConstraint("heavysrc <= C0"))
        Out.AbortRolledBack = false;
      Best = std::min(Best, T.seconds());
    }
    Out.AcceptSeconds = Best;
  }

  // --- warm_recovery: the base is the shape minus the last 10% of its
  // variable-variable edges; those become the replayed journal.
  {
    RandomConstraintShape Base = Shape;
    size_t Keep = Base.VarVar.size() - Base.VarVar.size() / 10;
    std::vector<std::pair<uint32_t, uint32_t>> Extra(
        Base.VarVar.begin() + Keep, Base.VarVar.end());
    Base.VarVar.resize(Keep);
    Out.ReplayedLines = static_cast<unsigned>(Extra.size());

    std::vector<std::string> Lines;
    Lines.reserve(Extra.size());
    for (auto [From, To] : Extra)
      Lines.push_back("X" + std::to_string(From) + " <= X" +
                      std::to_string(To));

    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options);
    emitShapeOrdered(Base, Solver, /*FactsFirst=*/false);
    std::vector<uint8_t> BaseBytes;
    if (!serve::GraphSnapshot::serialize(Solver, BaseBytes))
      return Out;

    std::vector<uint8_t> RecoveredBytes;
    Out.RecoverySeconds = bestOfN(Repeats, [&] {
      serve::SolverBundle Bundle;
      if (!serve::GraphSnapshot::deserialize(BaseBytes.data(),
                                             BaseBytes.size(), Bundle))
        return;
      ConstraintSystemFile Sys;
      if (!Sys.adoptDeclarations(*Bundle.Solver))
        return;
      for (const std::string &Line : Lines)
        if (!Sys.addLine(Line, *Bundle.Solver))
          return;
      Bundle.Solver->materializeAllViews();
      RecoveredBytes.clear();
      serve::GraphSnapshot::serialize(*Bundle.Solver, RecoveredBytes);
    });

    std::vector<uint8_t> FreshBytes;
    Out.RecoveryFreshSeconds = bestOfN(Repeats, [&] {
      ConstructorTable C;
      TermTable T(C);
      ConstraintSolver S(T, Options);
      emitShapeOrdered(Base, S, /*FactsFirst=*/false);
      ConstraintSystemFile Sys;
      if (!Sys.adoptDeclarations(S))
        return;
      for (const std::string &Line : Lines)
        if (!Sys.addLine(Line, S))
          return;
      S.materializeAllViews();
      FreshBytes.clear();
      serve::GraphSnapshot::serialize(S, FreshBytes);
    });
    Out.RecoveryStateMatch =
        !RecoveredBytes.empty() && RecoveredBytes == FreshBytes;
  }
  return Out;
}

/// Retraction A/B: deleting K constraints from a solved system through
/// the incremental cone recompute against the only alternative a
/// retraction-free solver has — a full re-solve of the survivors after
/// every deletion. Both sides must end with identical rendered least
/// solutions for every variable (compared as text: the incremental
/// TermTable still interns terms of retracted lines, so raw ExprIds
/// differ from a fresh solver's).
struct RetractResult {
  double ConeSeconds = 0;    ///< K retract() calls on one solver, best of N.
  double ResolveSeconds = 0; ///< K fresh solves of the survivors, best of N.
  unsigned Retractions = 0;
  uint64_t ConeVarsRecomputed = 0;
  uint64_t CollapsesSplit = 0;
  bool StateMatch = false;
};

RetractResult measureRetract(double Scale, unsigned Repeats) {
  // A tagged-line system (the path retraction runs through in the serve
  // layer): plain copies, nullary sources, and ref() cells so retraction
  // unwinds decompositions too.
  PRNG Rng(606);
  const uint32_t NumVars =
      std::max<uint32_t>(16, static_cast<uint32_t>(1500 * Scale));
  const uint32_t NumSources = 12;
  const uint32_t NumLines = NumVars + NumVars / 2;
  std::vector<std::string> Decls;
  Decls.push_back("cons ref + -");
  for (uint32_t I = 0; I != NumSources; ++I)
    Decls.push_back("cons src" + std::to_string(I));
  {
    std::string VarLine = "var";
    for (uint32_t I = 0; I != NumVars; ++I)
      VarLine += " X" + std::to_string(I);
    Decls.push_back(std::move(VarLine));
  }
  auto Var = [&] { return "X" + std::to_string(Rng.nextBelow(NumVars)); };
  std::vector<std::string> Lines;
  for (uint32_t I = 0; I != NumLines; ++I) {
    std::string Line;
    switch (Rng.nextBelow(8)) {
    case 0:
    case 1:
      Line = "src" + std::to_string(Rng.nextBelow(NumSources)) + " <= " +
             Var();
      break;
    case 2:
      Line = "ref(" + Var() + ", " + Var() + ") <= " + Var();
      break;
    case 3:
      Line = Var() + " <= ref(" + Var() + ", " + Var() + ")";
      break;
    default:
      Line = Var() + " <= " + Var();
      break;
    }
    if (std::find(Lines.begin(), Lines.end(), Line) == Lines.end())
      Lines.push_back(std::move(Line));
  }
  // K deletion targets spread across the input (never bunched, so the
  // cones sample the whole graph, cycles included).
  const unsigned K = 12;
  std::vector<std::string> Targets;
  for (unsigned I = 0; I != K; ++I)
    Targets.push_back(Lines[(I * Lines.size()) / K]);

  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  auto feed = [&](ConstraintSystemFile &Sys, ConstraintSolver &Solver,
                  const std::vector<std::string> &Constraints) {
    for (const std::string &Line : Decls)
      if (!Sys.addLine(Line, Solver))
        return false;
    for (const std::string &Line : Constraints)
      if (!Sys.addLine(Line, Solver))
        return false;
    return true;
  };
  auto render = [](ConstraintSolver &Solver) {
    std::vector<std::string> Out;
    for (uint32_t I = 0; I != Solver.numCreations(); ++I) {
      std::vector<std::string> Rendered;
      for (ExprId Term : Solver.leastSolution(Solver.varOfCreation(I)))
        Rendered.push_back(Solver.exprStr(Term));
      std::sort(Rendered.begin(), Rendered.end());
      for (std::string &S : Rendered)
        Out.push_back(std::move(S));
      Out.push_back(";");
    }
    return Out;
  };

  RetractResult Out;
  Out.Retractions = K;

  // Cone path: one solver, K incremental retractions (build untimed).
  std::vector<std::string> ConeRendered;
  double ConeBest = 1e300;
  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options);
    ConstraintSystemFile Sys;
    if (!feed(Sys, Solver, Lines))
      return Out;
    Solver.finalize();
    Timer T;
    for (const std::string &Target : Targets) {
      std::string Canon;
      if (!Sys.canonicalizeConstraint(Target, Solver, Canon) ||
          !Solver.retract(Canon))
        return Out;
      Sys.removeConstraint(Canon);
    }
    Solver.finalize();
    ConeBest = std::min(ConeBest, T.seconds());
    Out.ConeVarsRecomputed = Solver.stats().ConeVarsRecomputed;
    Out.CollapsesSplit = Solver.stats().CollapsesSplit;
    ConeRendered = render(Solver);
  }
  Out.ConeSeconds = ConeBest;

  // Baseline: after each deletion, re-solve the survivors from scratch —
  // what a solver without retraction support has to do.
  std::vector<std::string> Survivors = Lines;
  for (const std::string &Target : Targets)
    Survivors.erase(
        std::find(Survivors.begin(), Survivors.end(), Target));
  std::vector<std::string> ResolveRendered;
  double ResolveBest = 1e300;
  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    Timer T;
    for (unsigned Step = 1; Step <= K; ++Step) {
      std::vector<std::string> Live = Lines;
      for (unsigned I = 0; I != Step; ++I)
        Live.erase(std::find(Live.begin(), Live.end(), Targets[I]));
      ConstructorTable Constructors;
      TermTable Terms(Constructors);
      ConstraintSolver Solver(Terms, Options);
      ConstraintSystemFile Sys;
      if (!feed(Sys, Solver, Live))
        return Out;
      Solver.finalize();
      if (Step == K)
        ResolveRendered = render(Solver);
    }
    ResolveBest = std::min(ResolveBest, T.seconds());
  }
  Out.ResolveSeconds = ResolveBest;
  Out.StateMatch =
      !ConeRendered.empty() && ConeRendered == ResolveRendered;
  return Out;
}

int emitTrajectory(const std::string &Path) {
  double Scale = 1.0;
  if (const char *Env = std::getenv("POCE_BENCH_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0)
    Scale = 1.0;
  unsigned Repeats = 3;
  if (const char *Env = std::getenv("POCE_BENCH_REPEATS"))
    Repeats = std::max(1, std::atoi(Env));
  // Lanes for the thread-scaling entries. The acceptance point of the
  // parallel layer is 4 lanes; override with POCE_BENCH_THREADS (0 = one
  // per hardware thread).
  unsigned Threads = 4;
  if (const char *Env = std::getenv("POCE_BENCH_THREADS"))
    Threads = ThreadPool::resolveThreads(
        static_cast<unsigned>(std::atoi(Env)));
  if (Threads < 1)
    Threads = 1;

  const TrajectoryConfig Configs[] = {
      {"sf_plain", GraphForm::Standard, CycleElim::None, 6000, 4000, 2.0, 101,
       /*FactsFirst=*/true},
      {"sf_online", GraphForm::Standard, CycleElim::Online, 6000, 4000, 2.0,
       102, /*FactsFirst=*/true},
      {"sf_cascade", GraphForm::Standard, CycleElim::None, 4000, 2600, 2.0,
       105, /*FactsFirst=*/false},
      {"if_plain", GraphForm::Inductive, CycleElim::None, 4000, 2600, 1.2,
       103, /*FactsFirst=*/false},
      {"if_online", GraphForm::Inductive, CycleElim::Online, 6000, 4000, 1.5,
       104, /*FactsFirst=*/false},
  };

  std::string Prior = bench::readPriorRuns(Path);
  std::string Timestamp = bench::utcTimestamp();

  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return 1;
  }

  std::fprintf(File, "{\n  \"bench\": \"micro_solver\",\n  \"runs\": [\n");
  if (!Prior.empty())
    std::fprintf(File, "%s,\n", Prior.c_str());
  std::fprintf(File,
               "  {\"timestamp\": \"%s\", \"mode\": \"emit_trajectory\",\n"
               "   \"repeats\": %u, \"scale\": %.2f, \"threads\": %u,\n"
               "   \"entries\": [\n",
               Timestamp.c_str(), Repeats, Scale, Threads);
  std::printf("=== micro_solver trajectory (best of %u, %u lanes) ===\n",
              Repeats, Threads);

  bool First = true;
  for (const TrajectoryConfig &Base : Configs) {
    TrajectoryConfig Config = Base;
    Config.NumVars = std::max<uint32_t>(
        8, static_cast<uint32_t>(Config.NumVars * Scale));
    Config.NumCons = std::max<uint32_t>(
        4, static_cast<uint32_t>(Config.NumCons * Scale));
    TrajectoryResult R = measureTrajectory(Config, Repeats);
    double Speedup = R.BaselineSeconds / std::max(R.WallSeconds, 1e-9);
    SolverOptions Named = makeConfig(Config.Form, Config.Elim);

    // The hot-path counter keys come from SolverStats::hotPathCounters so
    // the JSON stays in sync with the fig7-9 tables.
    std::string HotPath;
    for (const SolverStats::NamedCounter &C : R.Stats.hotPathCounters())
      HotPath += std::string("\"") + C.Key +
                 "\": " + std::to_string(C.Value) + ", ";
    std::fprintf(
        File,
        "%s    {\"name\": \"%s\", \"config\": \"%s\", \"order\": \"%s\", "
        "\"vars\": %u, \"cons\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"work\": %llu, \"edges\": %llu,\n"
        "     %s\"solution_bits\": %llu}",
        First ? "" : ",\n", Config.Name, Named.configName().c_str(),
        Config.FactsFirst ? "facts_first" : "edges_first", Config.NumVars,
        Config.NumCons, R.WallSeconds, R.BaselineSeconds,
        Speedup, (unsigned long long)R.Work, (unsigned long long)R.Edges,
        HotPath.c_str(), (unsigned long long)R.SolutionBits);
    First = false;

    std::printf("%-14s %-10s vars=%-6u wall=%.3fs baseline=%.3fs "
                "speedup=%.2fx work=%llu edges=%llu\n",
                Config.Name, Named.configName().c_str(), Config.NumVars,
                R.WallSeconds, R.BaselineSeconds, Speedup,
                (unsigned long long)R.Work, (unsigned long long)R.Edges);
  }

  // Wave-closure entries on the cascade shape (the worst case for eager
  // singleton deltas, the best case for level-batched sweeps).
  // wave_closure is the schedule A/B at equal propagation machinery
  // (wave vs worklist, DiffProp on for both); sf_cascade_wave keeps the
  // sf_cascade entry's seed-path baseline so the acceptance ratio
  // against the seed implementation is recorded directly.
  {
    TrajectoryConfig Cascade = {"sf_cascade", GraphForm::Standard,
                                CycleElim::None, 4000, 2600, 2.0, 105,
                                /*FactsFirst=*/false};
    Cascade.NumVars = std::max<uint32_t>(
        8, static_cast<uint32_t>(Cascade.NumVars * Scale));
    Cascade.NumCons = std::max<uint32_t>(
        4, static_cast<uint32_t>(Cascade.NumCons * Scale));
    WaveResult R = measureWave(Cascade, Repeats);
    bool ChecksumMatch =
        R.WaveBits == R.WorklistBits && R.WaveBits == R.SeedBits &&
        R.Edges == R.WorklistEdges;
    double VsWorklist = R.WorklistSeconds / std::max(R.WaveSeconds, 1e-9);
    double VsSeed = R.SeedSeconds / std::max(R.WaveSeconds, 1e-9);

    std::string HotPath;
    for (const SolverStats::NamedCounter &C : R.WaveStats.hotPathCounters())
      HotPath += std::string("\"") + C.Key +
                 "\": " + std::to_string(C.Value) + ", ";
    std::fprintf(
        File,
        ",\n    {\"name\": \"wave_closure\", \"config\": \"SF-Plain\", "
        "\"order\": \"edges_first\", \"vars\": %u, \"cons\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"work\": %llu, \"edges\": %llu,\n"
        "     \"wave_passes\": %llu, \"levels_propagated\": %llu, "
        "\"wave_fallbacks\": %llu,\n"
        "     %s\"solution_bits\": %llu, \"checksum_match\": %s},\n"
        "    {\"name\": \"sf_cascade_wave\", \"config\": \"SF-Plain\", "
        "\"order\": \"edges_first\", \"vars\": %u, \"cons\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"work\": %llu, \"edges\": %llu, "
        "\"solution_bits\": %llu, \"checksum_match\": %s}",
        Cascade.NumVars, Cascade.NumCons, R.WaveSeconds, R.WorklistSeconds,
        VsWorklist, (unsigned long long)R.Work, (unsigned long long)R.Edges,
        (unsigned long long)R.WaveStats.WavePasses,
        (unsigned long long)R.WaveStats.LevelsPropagated,
        (unsigned long long)R.WaveStats.WaveFallbacks, HotPath.c_str(),
        (unsigned long long)R.WaveBits, ChecksumMatch ? "true" : "false",
        Cascade.NumVars, Cascade.NumCons, R.WaveSeconds, R.SeedSeconds,
        VsSeed, (unsigned long long)R.Work, (unsigned long long)R.Edges,
        (unsigned long long)R.WaveBits, ChecksumMatch ? "true" : "false");
    std::printf("%-14s %-10s vars=%-6u wall=%.3fs baseline=%.3fs "
                "speedup=%.2fx work=%llu edges=%llu passes=%llu\n",
                "wave_closure", "SF-Plain", Cascade.NumVars, R.WaveSeconds,
                R.WorklistSeconds, VsWorklist, (unsigned long long)R.Work,
                (unsigned long long)R.Edges,
                (unsigned long long)R.WaveStats.WavePasses);
    std::printf("%-14s %-10s vars=%-6u wall=%.3fs baseline=%.3fs "
                "speedup=%.2fx checksum_match=%s\n",
                "sf_cascade_wave", "SF-Plain", Cascade.NumVars,
                R.WaveSeconds, R.SeedSeconds, VsSeed,
                ChecksumMatch ? "yes" : "NO");
    if (!ChecksumMatch) {
      std::fprintf(stderr, "error: wave_closure: wave solutions diverged "
                           "from the worklist/seed solutions\n");
      std::fclose(File);
      return 1;
    }
  }

  // Offline-preprocessing entries. offline_preprocess measures the pass
  // against a cycle-heavy plain configuration (no online elimination to
  // compete with, so the pass carries the whole win); hybrid_cascade
  // stacks it under IF-Online on the cascade emission order — the
  // deployment shape, where offline catches the bulk-load cycles and the
  // online search mops up post-closure ones. Solutions must be
  // bit-identical with the pass off.
  {
    const TrajectoryConfig PreprocessConfigs[] = {
        {"offline_preprocess", GraphForm::Standard, CycleElim::None, 6000,
         4000, 2.0, 106, /*FactsFirst=*/true},
        {"hybrid_cascade", GraphForm::Inductive, CycleElim::Online, 6000,
         4000, 1.5, 107, /*FactsFirst=*/false},
    };
    for (const TrajectoryConfig &Base : PreprocessConfigs) {
      TrajectoryConfig Config = Base;
      Config.NumVars = std::max<uint32_t>(
          8, static_cast<uint32_t>(Config.NumVars * Scale));
      Config.NumCons = std::max<uint32_t>(
          4, static_cast<uint32_t>(Config.NumCons * Scale));
      PreprocessResult R = measurePreprocess(Config, Repeats);
      bool ChecksumMatch = R.OfflineBits == R.BaselineBits;
      double Speedup = R.BaselineSeconds / std::max(R.OfflineSeconds, 1e-9);
      SolverOptions Named = makeConfig(Config.Form, Config.Elim);
      std::fprintf(
          File,
          ",\n    {\"name\": \"%s\", \"config\": \"%s\", \"order\": \"%s\", "
          "\"vars\": %u, \"cons\": %u,\n"
          "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
          "\"speedup\": %.2f,\n"
          "     \"offline_vars\": %llu, \"offline_sccs\": %llu, "
          "\"hvn_labels\": %llu,\n"
          "     \"vars_eliminated\": %llu, \"cycle_searches\": %llu,\n"
          "     \"edges\": %llu, \"edges_baseline\": %llu,\n"
          "     \"solution_bits\": %llu, \"checksum_match\": %s}",
          Config.Name, Named.configName().c_str(),
          Config.FactsFirst ? "facts_first" : "edges_first", Config.NumVars,
          Config.NumCons, R.OfflineSeconds, R.BaselineSeconds, Speedup,
          (unsigned long long)R.OfflineStats.OfflineCollapsedVars,
          (unsigned long long)R.OfflineStats.OfflineSCCs,
          (unsigned long long)R.OfflineStats.HVNLabels,
          (unsigned long long)R.OfflineStats.VarsEliminated,
          (unsigned long long)R.OfflineStats.CycleSearches,
          (unsigned long long)R.OfflineEdges,
          (unsigned long long)R.BaselineEdges,
          (unsigned long long)R.OfflineBits, ChecksumMatch ? "true" : "false");
      std::printf("%-14s %-10s vars=%-6u wall=%.3fs baseline=%.3fs "
                  "speedup=%.2fx offline_vars=%llu hvn_labels=%llu "
                  "checksum_match=%s\n",
                  Config.Name, Named.configName().c_str(), Config.NumVars,
                  R.OfflineSeconds, R.BaselineSeconds, Speedup,
                  (unsigned long long)R.OfflineStats.OfflineCollapsedVars,
                  (unsigned long long)R.OfflineStats.HVNLabels,
                  ChecksumMatch ? "yes" : "NO");
      if (!ChecksumMatch) {
        std::fprintf(stderr,
                     "error: %s: solutions with offline preprocessing "
                     "diverged from the pass-off solutions\n",
                     Config.Name);
        std::fclose(File);
        return 1;
      }
    }
  }

  // Thread-scaling entries: wall_s is the parallel variant, the baseline
  // a single lane. Checksums are asserted identical (the parallel layer
  // is bit-deterministic).
  struct {
    const char *Name;
    ScalingResult R;
  } ScalingEntries[] = {
      {"if_ls_parallel", measureLSParallel(Scale, Repeats, Threads)},
      {"batch_suite", measureBatchSuite(Scale, Repeats, Threads)},
  };
  for (const auto &Entry : ScalingEntries) {
    const ScalingResult &R = Entry.R;
    double Speedup = R.BaselineSeconds / std::max(R.WallSeconds, 1e-9);
    std::fprintf(
        File,
        ",\n    {\"name\": \"%s\", \"kind\": \"thread_scaling\", "
        "\"threads\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"checksum\": %llu, \"checksum_match\": %s}",
        Entry.Name, Threads, R.WallSeconds, R.BaselineSeconds, Speedup,
        (unsigned long long)R.Checksum,
        R.Checksum == R.BaselineChecksum ? "true" : "false");
    std::printf("%-14s threads=%-4u wall=%.3fs baseline=%.3fs "
                "speedup=%.2fx checksum_match=%s\n",
                Entry.Name, Threads, R.WallSeconds, R.BaselineSeconds,
                Speedup, R.Checksum == R.BaselineChecksum ? "yes" : "NO");
    if (R.Checksum != R.BaselineChecksum) {
      std::fprintf(stderr, "error: %s: parallel result diverged from the "
                           "single-lane result\n",
                   Entry.Name);
      std::fclose(File);
      return 1;
    }
  }

  // Serve-layer entries: snapshot persistence and the query engine. The
  // contract is that warming a server from a snapshot plus answering a
  // mixed query batch beats re-solving from the constraints plus the same
  // batch — and returns the same answers.
  {
    ServeResult R = measureServe(Scale, Repeats, Threads);
    double LoadSpeedup = R.FreshSeconds / std::max(R.LoadSeconds, 1e-9);
    double PathSpeedup =
        R.FreshPathSeconds / std::max(R.LoadPathSeconds, 1e-9);
    std::fprintf(
        File,
        ",\n    {\"name\": \"snapshot_save\", \"kind\": \"serve\", "
        "\"wall_s\": %.6f, \"bytes\": %llu},\n"
        "    {\"name\": \"snapshot_load\", \"kind\": \"serve\",\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f},\n"
        "    {\"name\": \"query_engine\", \"kind\": \"serve\", "
        "\"queries\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"p50_us\": %llu, \"p99_us\": %llu, \"hit_rate\": %.3f,\n"
        "     \"checksum\": %llu, \"checksum_match\": %s}",
        R.SaveSeconds, (unsigned long long)R.SnapshotBytes, R.LoadSeconds,
        R.FreshSeconds, LoadSpeedup, R.NumQueries, R.LoadPathSeconds,
        R.FreshPathSeconds, PathSpeedup, (unsigned long long)R.P50Micros,
        (unsigned long long)R.P99Micros, R.HitRate,
        (unsigned long long)R.Checksum,
        R.Checksum == R.BaselineChecksum ? "true" : "false");
    std::printf("%-14s wall=%.3fs bytes=%llu\n", "snapshot_save",
                R.SaveSeconds, (unsigned long long)R.SnapshotBytes);
    std::printf("%-14s wall=%.3fs baseline=%.3fs speedup=%.2fx\n",
                "snapshot_load", R.LoadSeconds, R.FreshSeconds, LoadSpeedup);
    std::printf("%-14s queries=%-4u wall=%.3fs baseline=%.3fs "
                "speedup=%.2fx p50=%lluus p99=%lluus hit_rate=%.2f "
                "checksum_match=%s\n",
                "query_engine", R.NumQueries, R.LoadPathSeconds,
                R.FreshPathSeconds, PathSpeedup,
                (unsigned long long)R.P50Micros,
                (unsigned long long)R.P99Micros, R.HitRate,
                R.Checksum == R.BaselineChecksum ? "yes" : "NO");
    if (R.Checksum != R.BaselineChecksum) {
      std::fprintf(stderr, "error: query_engine: snapshot-path answers "
                           "diverged from the fresh-solve answers\n");
      std::fclose(File);
      return 1;
    }
  }

  // Fault-tolerance entries: what a budget abort costs against accepting
  // the same line, and warm recovery (snapshot + journal replay) against
  // a fresh solve. Both verify the resulting graphs bit-identical.
  {
    FaultToleranceResult R = measureFaultTolerance(Scale, Repeats);
    double RecoverySpeedup =
        R.RecoveryFreshSeconds / std::max(R.RecoverySeconds, 1e-9);
    std::fprintf(
        File,
        ",\n    {\"name\": \"budget_abort\", \"kind\": "
        "\"fault_tolerance\",\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f,\n"
        "     \"rolled_back\": %s, \"state_match\": %s},\n"
        "    {\"name\": \"warm_recovery\", \"kind\": "
        "\"fault_tolerance\", \"replayed_lines\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"state_match\": %s}",
        R.AbortSeconds, R.AcceptSeconds,
        R.AbortRolledBack ? "true" : "false",
        R.AbortStateMatch ? "true" : "false", R.ReplayedLines,
        R.RecoverySeconds, R.RecoveryFreshSeconds, RecoverySpeedup,
        R.RecoveryStateMatch ? "true" : "false");
    std::printf("%-14s wall=%.4fs accept=%.4fs rolled_back=%s "
                "state_match=%s\n",
                "budget_abort", R.AbortSeconds, R.AcceptSeconds,
                R.AbortRolledBack ? "yes" : "NO",
                R.AbortStateMatch ? "yes" : "NO");
    std::printf("%-14s wall=%.3fs baseline=%.3fs speedup=%.2fx "
                "replayed=%u state_match=%s\n",
                "warm_recovery", R.RecoverySeconds, R.RecoveryFreshSeconds,
                RecoverySpeedup, R.ReplayedLines,
                R.RecoveryStateMatch ? "yes" : "NO");
    if (!R.AbortRolledBack || !R.AbortStateMatch ||
        !R.RecoveryStateMatch) {
      std::fprintf(stderr, "error: fault_tolerance: rollback or recovery "
                           "did not reproduce the expected graph\n");
      std::fclose(File);
      return 1;
    }
  }

  // Retraction entry: K incremental deletions via the cone recompute
  // against a full re-solve of the survivors after each deletion, with
  // the rendered least solutions asserted identical.
  {
    RetractResult R = measureRetract(Scale, Repeats);
    double Speedup = R.ResolveSeconds / std::max(R.ConeSeconds, 1e-9);
    std::fprintf(
        File,
        ",\n    {\"name\": \"retract_cone\", \"kind\": \"retract\", "
        "\"retractions\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"cone_vars_recomputed\": %llu, \"collapses_split\": %llu, "
        "\"state_match\": %s}",
        R.Retractions, R.ConeSeconds, R.ResolveSeconds, Speedup,
        (unsigned long long)R.ConeVarsRecomputed,
        (unsigned long long)R.CollapsesSplit,
        R.StateMatch ? "true" : "false");
    std::printf("%-14s retractions=%-3u wall=%.4fs baseline=%.4fs "
                "speedup=%.2fx cone_vars=%llu splits=%llu "
                "state_match=%s\n",
                "retract_cone", R.Retractions, R.ConeSeconds,
                R.ResolveSeconds, Speedup,
                (unsigned long long)R.ConeVarsRecomputed,
                (unsigned long long)R.CollapsesSplit,
                R.StateMatch ? "yes" : "NO");
    if (!R.StateMatch) {
      std::fprintf(stderr, "error: retract_cone: incremental retraction "
                           "diverged from the re-solve of survivors\n");
      std::fclose(File);
      return 1;
    }
  }

  // The process-wide registry snapshot rides along in the run record:
  // the unconditionally-recorded histograms (snapshot serialize/load,
  // WAL, query-view builds) accumulated across the entries above. Kept
  // inside the run object so readPriorRuns' bracket scan still sees the
  // runs array as the outermost brackets.
  std::string Metrics = MetricsRegistry::global().renderJson();
  std::fprintf(File, "\n   ],\n   \"metrics\": %s}\n  ]\n}\n",
               Metrics.c_str());
  std::fclose(File);
  std::printf("appended run to %s\n", Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--emit_trajectory") == 0)
      return emitTrajectory("BENCH_micro_solver.json");
    if (std::strncmp(Arg, "--emit_trajectory=", 18) == 0)
      return emitTrajectory(Arg + 18);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
