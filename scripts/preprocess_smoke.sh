#!/usr/bin/env bash
# Offline-preprocessing smoke test: generate a cycle-heavy bulk load
# (three variable rings bridged into a chain, with sources feeding each
# ring), solve it with and without --preprocess=offline, and assert
#   (1) the printed least solutions are byte-identical,
#   (2) the offline pass actually fired (offline vars > 0), and
#   (3) the hybrid run performs no more online cycle searches than the
#       purely online run (on this shape it should do far fewer: the
#       rings are collapsed before the first edge is ever inserted).
#
# Usage: scripts/preprocess_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSOLVE="$BUILD_DIR/src/driver/scsolve"
if [ ! -x "$SCSOLVE" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scsolve
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SCS="$WORK/rings.scs"

# Three rings of 20 variables each, a bridge chain joining them, and one
# source per ring: the pre-closure variable graph already carries every
# cycle, so the offline SCC pass sees all of them.
RINGS=3
LEN=20
awk -v rings="$RINGS" -v len="$LEN" 'BEGIN {
  for (r = 0; r < rings; ++r) printf "cons s%d\n", r;
  printf "var";
  for (r = 0; r < rings; ++r)
    for (i = 0; i < len; ++i) printf " R%d_%d", r, i;
  printf "\n";
  for (r = 0; r < rings; ++r)
    for (i = 0; i < len; ++i)
      printf "R%d_%d <= R%d_%d\n", r, i, r, (i + 1) % len;
  for (r = 0; r + 1 < rings; ++r)
    printf "R%d_0 <= R%d_0\n", r, r + 1;
  for (r = 0; r < rings; ++r)
    printf "s%d() <= R%d_%d\n", r, r, len / 2;
}' > "$SCS"

run() { # run <preprocess> <solutions-out> <stats-out>
  "$SCSOLVE" --config=if-online --preprocess="$1" "$SCS" > "$2"
  "$SCSOLVE" --config=if-online --preprocess="$1" --stats "$SCS" > "$3"
}

run none "$WORK/none.out" "$WORK/none.stats"
run offline "$WORK/offline.out" "$WORK/offline.stats"

if ! cmp -s "$WORK/none.out" "$WORK/offline.out"; then
  echo "FAIL: offline-preprocessed least solutions differ" >&2
  diff "$WORK/none.out" "$WORK/offline.out" >&2 | head -20
  exit 1
fi

stat() { # stat <stats-file> <line-prefix>
  grep "^$2:" "$1" | tr -d ' ,' | cut -d: -f2
}
OFF_VARS=$(stat "$WORK/offline.stats" "offline vars")
NONE_SEARCHES=$(stat "$WORK/none.stats" "cycle searches")
OFF_SEARCHES=$(stat "$WORK/offline.stats" "cycle searches")

if [ -z "$OFF_VARS" ] || [ -z "$NONE_SEARCHES" ] || [ -z "$OFF_SEARCHES" ]
then
  echo "FAIL: could not read preprocessing counters from --stats" >&2
  exit 1
fi
if [ "$OFF_VARS" -lt 1 ]; then
  echo "FAIL: offline pass collapsed no variables on the ring shape" \
       "(--preprocess flag not wired?)" >&2
  exit 1
fi
if [ "$OFF_SEARCHES" -gt "$NONE_SEARCHES" ]; then
  echo "FAIL: hybrid run searched for cycles more often than the purely" \
       "online run ($OFF_SEARCHES > $NONE_SEARCHES)" >&2
  exit 1
fi

echo "preprocess smoke OK: solutions identical;" \
     "offline vars=$OFF_VARS;" \
     "cycle searches online=$NONE_SEARCHES hybrid=$OFF_SEARCHES"
