# Empty dependencies file for model_theorem51.
# This may be replaced when dependencies are built.
