//===- bench/fig7_plain_scaling.cpp - Reproduction of Figure 7 -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 7 as a data series: analysis time vs AST
/// nodes for SF-Plain and IF-Plain (no cycle elimination). Expected shape:
/// both curves grow super-linearly and become impractical for large
/// programs, with IF-Plain above SF-Plain (cycles create many redundant
/// variable-variable edges in inductive form).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Figure 7: analysis time without cycle elimination ===\n");
  Env.print();

  std::vector<std::string> Header = {"Benchmark", "AST", "SF-Plain(s)",
                                     "IF-Plain(s)", "IF/SF"};
  appendHotPathHeaders(Header, "SF", "IF");
  TextTable Table(std::move(Header));
  for (auto &Entry : prepareSuite(Env)) {
    MeasuredRun SF = runConfig(*Entry, GraphForm::Standard, CycleElim::None,
                               Env);
    MeasuredRun IF = runConfig(*Entry, GraphForm::Inductive, CycleElim::None,
                               Env);
    std::string Ratio =
        SF.Capped || IF.Capped
            ? "-"
            : formatDouble(IF.BestSeconds / std::max(SF.BestSeconds, 1e-9),
                           2);
    std::vector<std::string> Row = {Entry->Program->Spec.Name,
                                    formatGrouped(Entry->Program->AstNodes),
                                    cappedTime(SF.BestSeconds, SF.Capped),
                                    cappedTime(IF.BestSeconds, IF.Capped),
                                    Ratio};
    appendHotPathCells(Row, SF, IF);
    Table.addRow(std::move(Row));
  }
  Table.print();
  std::printf("\nPlot: time (y) against AST nodes (x); \">\" marks capped "
              "lower bounds.\n");
  return 0;
}
