//===- minic/Lexer.cpp - MiniC lexer ---------------------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace poce;
using namespace poce::minic;

const char *poce::minic::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwEnum:
    return "'enum'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwShort:
    return "'short'";
  case TokenKind::KwSigned:
    return "'signed'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwTypedef:
    return "'typedef'";
  case TokenKind::KwUnion:
    return "'union'";
  case TokenKind::KwUnsigned:
    return "'unsigned'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Ellipsis:
    return "'...'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Exclaim:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::ExclaimEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PercentEqual:
    return "'%='";
  case TokenKind::AmpEqual:
    return "'&='";
  case TokenKind::PipeEqual:
    return "'|='";
  case TokenKind::CaretEqual:
    return "'^='";
  case TokenKind::LessLessEqual:
    return "'<<='";
  case TokenKind::GreaterGreaterEqual:
    return "'>>='";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view Source, Diagnostics &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // Preprocessor lines: inputs are preprocessed, but #line markers and
    // stray directives are tolerated by skipping to end of line.
    if (C == '#' && Column == 1) {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = location();
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Source.size()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Text = std::move(Text);
  Tok.Loc = Loc;
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"break", TokenKind::KwBreak},       {"case", TokenKind::KwCase},
      {"char", TokenKind::KwChar},         {"const", TokenKind::KwConst},
      {"continue", TokenKind::KwContinue}, {"default", TokenKind::KwDefault},
      {"do", TokenKind::KwDo},             {"double", TokenKind::KwDouble},
      {"else", TokenKind::KwElse},         {"enum", TokenKind::KwEnum},
      {"extern", TokenKind::KwExtern},     {"float", TokenKind::KwFloat},
      {"for", TokenKind::KwFor},           {"if", TokenKind::KwIf},
      {"int", TokenKind::KwInt},           {"long", TokenKind::KwLong},
      {"return", TokenKind::KwReturn},     {"short", TokenKind::KwShort},
      {"signed", TokenKind::KwSigned},     {"sizeof", TokenKind::KwSizeof},
      {"static", TokenKind::KwStatic},     {"struct", TokenKind::KwStruct},
      {"switch", TokenKind::KwSwitch},     {"typedef", TokenKind::KwTypedef},
      {"union", TokenKind::KwUnion},       {"unsigned", TokenKind::KwUnsigned},
      {"void", TokenKind::KwVoid},         {"while", TokenKind::KwWhile},
  };

  size_t Start = Pos - 1;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc);
  return makeToken(TokenKind::Identifier, Loc, std::string(Text));
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Start = Pos - 1;
  bool IsFloat = false;

  if (Source[Start] == '0' && (peek() == 'x' || peek() == 'X')) {
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Sign = peek(1);
      unsigned DigitPos = (Sign == '+' || Sign == '-') ? 2 : 1;
      if (std::isdigit(static_cast<unsigned char>(peek(DigitPos)))) {
        IsFloat = true;
        advance();
        if (Sign == '+' || Sign == '-')
          advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
    }
  }
  // Consume integer/float suffixes.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
         peek() == 'f' || peek() == 'F')
    advance();

  std::string Text(Source.substr(Start, Pos - Start));
  return makeToken(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   Loc, std::move(Text));
}

void Lexer::lexEscape(std::string &Out) {
  // Called after the backslash was consumed.
  if (Pos >= Source.size())
    return;
  char C = advance();
  switch (C) {
  case 'n':
    Out.push_back('\n');
    break;
  case 't':
    Out.push_back('\t');
    break;
  case 'r':
    Out.push_back('\r');
    break;
  case '0':
    Out.push_back('\0');
    break;
  case '\\':
  case '\'':
  case '"':
    Out.push_back(C);
    break;
  default:
    Out.push_back(C); // Unknown escapes pass through.
    break;
  }
}

Token Lexer::lexCharLiteral(SourceLocation Loc) {
  std::string Text;
  while (Pos < Source.size() && peek() != '\'') {
    if (peek() == '\n') {
      Diags.error(Loc, "unterminated character literal");
      return makeToken(TokenKind::CharLiteral, Loc, std::move(Text));
    }
    if (advance() == '\\')
      lexEscape(Text);
    else
      Text.push_back(Source[Pos - 1]);
  }
  if (Pos >= Source.size())
    Diags.error(Loc, "unterminated character literal");
  else
    advance(); // Closing quote.
  return makeToken(TokenKind::CharLiteral, Loc, std::move(Text));
}

Token Lexer::lexStringLiteral(SourceLocation Loc) {
  std::string Text;
  while (Pos < Source.size() && peek() != '"') {
    if (peek() == '\n') {
      Diags.error(Loc, "unterminated string literal");
      return makeToken(TokenKind::StringLiteral, Loc, std::move(Text));
    }
    if (advance() == '\\')
      lexEscape(Text);
    else
      Text.push_back(Source[Pos - 1]);
  }
  if (Pos >= Source.size())
    Diags.error(Loc, "unterminated string literal");
  else
    advance(); // Closing quote.
  return makeToken(TokenKind::StringLiteral, Loc, std::move(Text));
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLocation Loc = location();
  if (Pos >= Source.size())
    return makeToken(TokenKind::EndOfFile, Loc);

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);

  switch (C) {
  case '\'':
    return lexCharLiteral(Loc);
  case '"':
    return lexStringLiteral(Loc);
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Loc);
  case '?':
    return makeToken(TokenKind::Question, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      return makeToken(TokenKind::Ellipsis, Loc);
    }
    return makeToken(TokenKind::Dot, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusEqual, Loc);
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusEqual, Loc);
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc);
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarEqual, Loc);
    return makeToken(TokenKind::Star, Loc);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashEqual, Loc);
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentEqual, Loc);
    return makeToken(TokenKind::Percent, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc);
    if (match('='))
      return makeToken(TokenKind::AmpEqual, Loc);
    return makeToken(TokenKind::Amp, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc);
    if (match('='))
      return makeToken(TokenKind::PipeEqual, Loc);
    return makeToken(TokenKind::Pipe, Loc);
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretEqual, Loc);
    return makeToken(TokenKind::Caret, Loc);
  case '!':
    if (match('='))
      return makeToken(TokenKind::ExclaimEqual, Loc);
    return makeToken(TokenKind::Exclaim, Loc);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::LessLessEqual, Loc);
      return makeToken(TokenKind::LessLess, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc);
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (match('>')) {
      if (match('='))
        return makeToken(TokenKind::GreaterGreaterEqual, Loc);
      return makeToken(TokenKind::GreaterGreater, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc);
    return makeToken(TokenKind::Greater, Loc);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc);
    return makeToken(TokenKind::Equal, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
