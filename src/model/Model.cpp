//===- model/Model.cpp - Analytical model of Section 5 ---------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "model/Model.h"

#include <cmath>
#include <cstdint>
#include <vector>

using namespace poce;
using namespace poce::model;

namespace {

/// Sums sum_{i=1}^{Limit} [C(Limit, i) i!] p^{i+1} * Weight(i), where
/// C(Limit, i) i! is the falling factorial Limit (Limit-1) ... (Limit-i+1).
/// The running term is updated multiplicatively; the sum is truncated when
/// terms stop contributing.
template <typename WeightFn>
double pathSeries(uint64_t Limit, double P, WeightFn Weight) {
  long double Sum = 0;
  long double Term = P; // Will become (falling factorial) * p^{i+1}.
  for (uint64_t I = 1; I <= Limit; ++I) {
    Term *= static_cast<long double>(Limit - (I - 1)) * P;
    long double Contribution = Term * Weight(I);
    Sum += Contribution;
    if (Contribution < Sum * 1e-16L && (Limit - I) * P < 1.0L)
      break;
  }
  return static_cast<double>(Sum);
}

} // namespace

double poce::model::expectedAdditionsSF(uint64_t N, uint64_t M, double P) {
  // (c, X): intermediates drawn from the n-1 other variables.
  double EdgeCX = pathSeries(N >= 1 ? N - 1 : 0, P, [](uint64_t) {
    return 1.0L;
  });
  // (c, c'): intermediates drawn from all n variables.
  double EdgeCC = pathSeries(N, P, [](uint64_t) { return 1.0L; });
  double Md = static_cast<double>(M);
  return Md * static_cast<double>(N) * EdgeCX + Md * (Md - 1.0) * EdgeCC;
}

double poce::model::expectedAdditionsIF(uint64_t N, uint64_t M, double P) {
  // (X1, X2): a path with i intermediates has l = i + 2 nodes; the
  // addition happens with probability 2/(l(l-1)).
  double EdgeXX = pathSeries(N >= 2 ? N - 2 : 0, P, [](uint64_t I) {
    return 2.0L / ((I + 2.0L) * (I + 1.0L));
  });
  // (X, c) and (c, X): probability 1/(l-1).
  double EdgeXC = pathSeries(N >= 1 ? N - 1 : 0, P,
                             [](uint64_t I) { return 1.0L / (I + 1.0L); });
  // (c, c'): always added.
  double EdgeCC = pathSeries(N, P, [](uint64_t) { return 1.0L; });
  double Nd = static_cast<double>(N);
  double Md = static_cast<double>(M);
  return Md * (Md - 1.0) * EdgeCC + 2.0 * Md * Nd * EdgeXC +
         Nd * (Nd - 1.0) * EdgeXX;
}

double poce::model::expectedReachable(uint64_t N, double P) {
  if (N < 2)
    return 0.0;
  // sum_i C(n-1, i) i! p^i / (i+1)!; the running term tracks
  // C(n-1, i) i! p^i, divided pointwise by (i+1)!.
  long double Sum = 0;
  long double Term = 1; // falling-factorial * p^i
  long double Factorial = 1; // (i+1)!
  for (uint64_t I = 1; I <= N - 1; ++I) {
    Term *= static_cast<long double>(N - I) * P;
    Factorial *= static_cast<long double>(I + 1);
    long double Contribution = Term / Factorial;
    Sum += Contribution;
    if (Contribution < Sum * 1e-16L)
      break;
  }
  return static_cast<double>(Sum);
}

double poce::model::reachableClosedForm(double K) {
  return (std::exp(K) - 1.0 - K) / K;
}

double poce::model::approxAdditionsSF(uint64_t N, uint64_t M) {
  double Nd = static_cast<double>(N), Md = static_cast<double>(M);
  double Root = std::sqrt(3.14159265358979323846 * Nd / 2.0);
  return Md * (Root - 1.0) + (Md * (Md - 1.0) / Nd) * Root;
}

double poce::model::approxAdditionsIF(uint64_t N, uint64_t M) {
  double Nd = static_cast<double>(N), Md = static_cast<double>(M);
  double Root = std::sqrt(3.14159265358979323846 * Nd / 2.0);
  return (Md * (Md - 1.0) / Nd) * Root + 2.0 * Md * std::log(Nd) + Nd;
}

double poce::model::theorem51Ratio(uint64_t N) {
  uint64_t M = (2 * N) / 3;
  double P = 1.0 / static_cast<double>(N);
  return expectedAdditionsSF(N, M, P) / expectedAdditionsIF(N, M, P);
}

//===----------------------------------------------------------------------===//
// Monte-Carlo validation
//===----------------------------------------------------------------------===//

namespace {

/// One sampled random graph: N variables (ids 0..N-1) followed by M
/// constructed nodes. Enumerates all simple paths with variable
/// intermediates and applies the model's addition conditions.
class TrialGraph {
public:
  TrialGraph(uint64_t N, uint64_t M, double P, PRNG &Rng)
      : N(N), Total(N + M), Adjacency(Total * Total, false), Rank(N) {
    for (uint64_t From = 0; From != Total; ++From)
      for (uint64_t To = 0; To != Total; ++To)
        if (From != To && Rng.nextBool(P))
          Adjacency[From * Total + To] = true;
    for (uint64_t I = 0; I != N; ++I)
      Rank[I] = static_cast<uint32_t>(I);
    Rng.shuffle(Rank.begin(), Rank.end());
  }

  bool isVar(uint64_t Node) const { return Node < N; }

  /// Counts model additions (SF and IF) over all simple paths.
  void countAdditions(double &SF, double &IF) {
    for (uint64_t Start = 0; Start != Total; ++Start) {
      Path.clear();
      OnPath.assign(Total, false);
      OnPath[Start] = true;
      extend(Start, Start, SF, IF);
      OnPath[Start] = false;
    }
  }

  /// Average number of variables reachable along predecessor chains
  /// (edges traversed backwards toward strictly smaller ranks).
  double averageReachable() {
    double Sum = 0;
    std::vector<bool> Visited(N);
    std::vector<uint64_t> Stack;
    for (uint64_t Start = 0; Start != N; ++Start) {
      Visited.assign(N, false);
      Visited[Start] = true;
      Stack.assign(1, Start);
      uint64_t Count = 0;
      while (!Stack.empty()) {
        uint64_t Node = Stack.back();
        Stack.pop_back();
        for (uint64_t Pred = 0; Pred != N; ++Pred) {
          if (Visited[Pred] || !Adjacency[Pred * Total + Node] ||
              Rank[Pred] >= Rank[Node])
            continue;
          Visited[Pred] = true;
          ++Count;
          Stack.push_back(Pred);
        }
      }
      Sum += static_cast<double>(Count);
    }
    return Sum / static_cast<double>(N);
  }

private:
  void extend(uint64_t Start, uint64_t Last, double &SF, double &IF) {
    for (uint64_t Next = 0; Next != Total; ++Next) {
      if (Next == Start || !Adjacency[Last * Total + Next] || OnPath[Next])
        continue;
      // Paths with at least one (variable) intermediate represent
      // closure-added edges (Start, Next).
      if (!Path.empty())
        recordAddition(Start, Next, SF, IF);
      if (isVar(Next)) {
        Path.push_back(Next);
        OnPath[Next] = true;
        extend(Start, Next, SF, IF);
        OnPath[Next] = false;
        Path.pop_back();
      }
    }
  }

  void recordAddition(uint64_t Start, uint64_t End, double &SF, double &IF) {
    bool StartVar = isVar(Start);
    bool EndVar = isVar(End);

    // Standard form propagates sources forward: additions are (c, X) and
    // (c, c').
    if (!StartVar)
      SF += 1.0;

    // Inductive form adds the edge through this path iff the endpoints'
    // ranks are minimal among the path's variables (Lemma 5.3).
    uint32_t MinIntermediate = ~0U;
    for (uint64_t Node : Path)
      MinIntermediate = std::min(MinIntermediate, Rank[Node]);
    bool StartOk = !StartVar || Rank[Start] < MinIntermediate;
    bool EndOk = !EndVar || Rank[End] < MinIntermediate;
    if (StartOk && EndOk)
      IF += 1.0;
  }

  uint64_t N, Total;
  std::vector<bool> Adjacency;
  std::vector<uint32_t> Rank;
  std::vector<uint64_t> Path;
  std::vector<bool> OnPath;
};

} // namespace

SimulationResult poce::model::simulateModel(uint64_t N, uint64_t M, double P,
                                            unsigned Trials, PRNG &Rng) {
  SimulationResult Result;
  for (unsigned Trial = 0; Trial != Trials; ++Trial) {
    TrialGraph Graph(N, M, P, Rng);
    Graph.countAdditions(Result.AdditionsSF, Result.AdditionsIF);
    Result.Reachable += Graph.averageReachable();
  }
  Result.AdditionsSF /= Trials;
  Result.AdditionsIF /= Trials;
  Result.Reachable /= Trials;
  return Result;
}
