# Empty dependencies file for fig7_plain_scaling.
# This may be replaced when dependencies are built.
