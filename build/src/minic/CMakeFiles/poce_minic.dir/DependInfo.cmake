
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/AST.cpp" "src/minic/CMakeFiles/poce_minic.dir/AST.cpp.o" "gcc" "src/minic/CMakeFiles/poce_minic.dir/AST.cpp.o.d"
  "/root/repo/src/minic/Diagnostics.cpp" "src/minic/CMakeFiles/poce_minic.dir/Diagnostics.cpp.o" "gcc" "src/minic/CMakeFiles/poce_minic.dir/Diagnostics.cpp.o.d"
  "/root/repo/src/minic/Lexer.cpp" "src/minic/CMakeFiles/poce_minic.dir/Lexer.cpp.o" "gcc" "src/minic/CMakeFiles/poce_minic.dir/Lexer.cpp.o.d"
  "/root/repo/src/minic/Parser.cpp" "src/minic/CMakeFiles/poce_minic.dir/Parser.cpp.o" "gcc" "src/minic/CMakeFiles/poce_minic.dir/Parser.cpp.o.d"
  "/root/repo/src/minic/PrettyPrinter.cpp" "src/minic/CMakeFiles/poce_minic.dir/PrettyPrinter.cpp.o" "gcc" "src/minic/CMakeFiles/poce_minic.dir/PrettyPrinter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/poce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
