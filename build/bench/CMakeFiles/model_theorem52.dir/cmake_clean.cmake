file(REMOVE_RECURSE
  "CMakeFiles/model_theorem52.dir/model_theorem52.cpp.o"
  "CMakeFiles/model_theorem52.dir/model_theorem52.cpp.o.d"
  "model_theorem52"
  "model_theorem52.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_theorem52.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
