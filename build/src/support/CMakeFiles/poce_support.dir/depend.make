# Empty dependencies file for poce_support.
# This may be replaced when dependencies are built.
