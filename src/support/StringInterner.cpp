//===- support/StringInterner.cpp - String uniquing -----------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace poce;

uint32_t StringInterner::intern(std::string_view Str) {
  auto It = Ids.find(std::string(Str));
  if (It != Ids.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Strings.size());
  auto [Inserted, IsNew] = Ids.emplace(std::string(Str), Id);
  (void)IsNew;
  Strings.push_back(&Inserted->first);
  return Id;
}

uint32_t StringInterner::lookup(std::string_view Str) const {
  auto It = Ids.find(std::string(Str));
  return It == Ids.end() ? NotFound : It->second;
}

const std::string &StringInterner::str(uint32_t Id) const {
  assert(Id < Strings.size() && "string id out of range!");
  return *Strings[Id];
}
