file(REMOVE_RECURSE
  "CMakeFiles/poce_model.dir/Model.cpp.o"
  "CMakeFiles/poce_model.dir/Model.cpp.o.d"
  "libpoce_model.a"
  "libpoce_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
