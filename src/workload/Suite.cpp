//===- workload/Suite.cpp - Benchmark suite catalog -------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "workload/Suite.h"

#include "andersen/Andersen.h"
#include "setcon/Oracle.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>

using namespace poce;
using namespace poce::workload;

namespace {
struct SuiteEntry {
  const char *Name;
  uint32_t AstNodes; ///< The paper's Table 1 AST-node count (target size).
};
} // namespace

// Names and sizes follow the paper's Table 1 (smallest to largest).
static const SuiteEntry PaperSuite[] = {
    {"allroots", 700},       {"diff.diffh", 935},
    {"anagram", 1078},       {"genetic", 1412},
    {"ks", 2284},            {"ul", 2395},
    {"ft", 3027},            {"compress", 3333},
    {"ratfor", 5269},        {"compiler", 5326},
    {"assembler", 6516},     {"ML-typecheck", 6752},
    {"eqntott", 8117},       {"simulator", 10946},
    {"less-177", 15179},     {"li", 16828},
    {"flex-2.4.7", 19056},   {"pmake", 31148},
    {"make-3.72.1", 36892},  {"inform-5.5", 38874},
    {"tar-1.11.2", 41035},   {"sgmls-1.1", 44533},
    {"screen-3.5.2", 49292}, {"cvs-1.3", 51223},
    {"espresso", 56938},     {"gawk-3.0.3", 71140},
    {"povray-2.2", 87391},
};

std::vector<ProgramSpec> poce::workload::paperSuite(double Scale,
                                                    uint32_t MaxAstNodes) {
  std::vector<ProgramSpec> Specs;
  uint64_t Seed = 0x706f6365'00000001ULL;
  for (const SuiteEntry &Entry : PaperSuite) {
    uint32_t Target =
        static_cast<uint32_t>(std::max(1.0, Entry.AstNodes * Scale));
    if (MaxAstNodes && Target > MaxAstNodes)
      continue;
    ProgramSpec Spec;
    Spec.Name = Entry.Name;
    Spec.TargetAstNodes = Target;
    Spec.Seed = Seed++;
    Specs.push_back(std::move(Spec));
  }
  return Specs;
}

std::unique_ptr<PreparedProgram>
poce::workload::prepareProgram(const ProgramSpec &Spec) {
  auto Prepared = std::make_unique<PreparedProgram>();
  Prepared->Spec = Spec;
  Prepared->Source = generateProgram(Spec);
  Prepared->Lines = static_cast<uint32_t>(
      std::count(Prepared->Source.begin(), Prepared->Source.end(), '\n'));
  Prepared->Ok = andersen::parseSource(Prepared->Source, Prepared->Unit,
                                       &Prepared->Errors, Spec.Name);
  Prepared->AstNodes = Prepared->Unit.numNodes();
  return Prepared;
}

std::vector<BatchSolveResult>
poce::workload::solveSuite(const std::vector<ProgramSpec> &Specs,
                           const SolverOptions &Options, unsigned Threads,
                           bool ExtractPointsTo) {
  std::vector<BatchSolveResult> Results(Specs.size());
  unsigned Lanes = ThreadPool::resolveThreads(Threads);
  SolverOptions EntryOptions = Options;
  if (Lanes > 1)
    EntryOptions.Threads = 1; // Parallelism lives at the batch level.

  ThreadPool Pool(Lanes);
  Pool.parallelFor(
      Specs.size(),
      [&](size_t I, unsigned) {
        Timer EntryTimer;
        BatchSolveResult &Out = Results[I];
        Out.Spec = Specs[I];
        std::unique_ptr<PreparedProgram> Program = prepareProgram(Specs[I]);
        Out.AstNodes = Program->AstNodes;
        Out.Lines = Program->Lines;
        Out.Errors = Program->Errors;
        if (!Program->Ok) {
          Out.EntrySeconds = EntryTimer.seconds();
          return;
        }
        ConstructorTable Constructors;
        Oracle WitnessOracle;
        const Oracle *OraclePtr = nullptr;
        if (EntryOptions.Elim == CycleElim::Oracle) {
          WitnessOracle = buildOracle(andersen::makeGenerator(Program->Unit),
                                      Constructors, EntryOptions);
          OraclePtr = &WitnessOracle;
        }
        Out.Result = andersen::runAnalysis(Program->Unit, Constructors,
                                           EntryOptions, OraclePtr,
                                           ExtractPointsTo);
        Out.Ok = true;
        Out.EntrySeconds = EntryTimer.seconds();
      },
      /*Grain=*/1);
  return Results;
}
