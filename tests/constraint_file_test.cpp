//===- tests/constraint_file_test.cpp - .scs format unit tests -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintFile.h"
#include "setcon/Oracle.h"

#include <gtest/gtest.h>

using namespace poce;

namespace {

const char *const SwapSystem = "cons ref + + -\n"
                               "cons nx\n"
                               "cons ny\n"
                               "var X Y P Q T\n"
                               "ref(nx, X, X) <= P\n"
                               "ref(ny, Y, Y) <= Q\n"
                               "P <= T\n"
                               "Q <= P\n"
                               "T <= Q\n";

std::vector<std::string> solve(const ConstraintSystemFile &System,
                               SolverOptions Options,
                               const std::string &VarName,
                               const Oracle *O = nullptr,
                               SolverStats *StatsOut = nullptr) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options, O);
  System.emit(Solver);
  Solver.finalize();
  if (StatsOut)
    *StatsOut = Solver.stats();
  VarId Var = Solver.varOfCreation(System.varIndex(VarName));
  std::vector<std::string> Out;
  for (ExprId Term : Solver.leastSolution(Var))
    Out.push_back(Solver.exprStr(Term));
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(ConstraintFileTest, ParsesDeclarationsAndConstraints) {
  ConstraintSystemFile System;
  Status Parsed = System.parse(SwapSystem);
  ASSERT_TRUE(Parsed.ok()) << Parsed;
  EXPECT_EQ(System.varNames().size(), 5u);
  EXPECT_EQ(System.numConstraints(), 5u);
  EXPECT_EQ(System.varIndex("P"), 2u);
  EXPECT_EQ(System.varIndex("nope"), ConstraintSystemFile::NotFound);
}

TEST(ConstraintFileTest, SolvesTheSwapSystem) {
  ConstraintSystemFile System;
  ASSERT_TRUE(System.parse(SwapSystem));
  // After the copy cycle, both pointers hold both locations.
  for (const char *Var : {"P", "Q", "T"}) {
    auto LS = solve(System, makeConfig(GraphForm::Inductive,
                                       CycleElim::Online),
                    Var);
    ASSERT_EQ(LS.size(), 2u) << Var;
    EXPECT_NE(LS[0].find("nx"), std::string::npos);
    EXPECT_NE(LS[1].find("ny"), std::string::npos);
  }
  // The cycle collapses.
  SolverStats Stats;
  solve(System, makeConfig(GraphForm::Inductive, CycleElim::Online), "P",
        nullptr, &Stats);
  EXPECT_GE(Stats.VarsEliminated, 1u);
}

TEST(ConstraintFileTest, AllConfigsAgree) {
  ConstraintSystemFile System;
  ASSERT_TRUE(System.parse(SwapSystem));
  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(System.generator(), Constructors, Base);
  auto Reference =
      solve(System, makeConfig(GraphForm::Standard, CycleElim::None), "Q");
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive})
    for (CycleElim Elim : {CycleElim::Online, CycleElim::Oracle,
                           CycleElim::Periodic})
      EXPECT_EQ(solve(System, makeConfig(Form, Elim), "Q",
                      Elim == CycleElim::Oracle ? &O : nullptr),
                Reference)
          << makeConfig(Form, Elim).configName();
}

TEST(ConstraintFileTest, RoundTripThroughWriter) {
  ConstraintSystemFile System;
  ASSERT_TRUE(System.parse(SwapSystem));
  std::string Printed = System.str();
  ConstraintSystemFile Reparsed;
  Status Reparse = Reparsed.parse(Printed);
  ASSERT_TRUE(Reparse.ok()) << Reparse << "\n" << Printed;
  EXPECT_EQ(Reparsed.str(), Printed);
  EXPECT_EQ(solve(System, makeConfig(GraphForm::Inductive,
                                     CycleElim::Online),
                  "P"),
            solve(Reparsed, makeConfig(GraphForm::Inductive,
                                       CycleElim::Online),
                  "P"));
}

TEST(ConstraintFileTest, CommentsAndBlankLines) {
  ConstraintSystemFile System;
  ASSERT_TRUE(System.parse("# leading comment\n"
                           "\n"
                           "var X   # trailing comment\n"
                           "cons a  # nullary\n"
                           "a <= X  # constraint\n"));
  EXPECT_EQ(System.numConstraints(), 1u);
}

TEST(ConstraintFileTest, ZeroAndOneConstants) {
  ConstraintSystemFile System;
  ASSERT_TRUE(System.parse("var X\ncons c +\n"
                           "0 <= X\nX <= 1\nc(1) <= X\nc(0) <= X\n"));
  auto LS = solve(System, makeConfig(GraphForm::Inductive,
                                     CycleElim::Online),
                  "X");
  EXPECT_EQ(LS.size(), 2u); // c(1) and c(0) are distinct sources.
}

TEST(ConstraintFileTest, ErrorsAreLineNumbered) {
  struct Case {
    const char *Text;
    const char *Needle;
  };
  const Case Cases[] = {
      {"var X\nX <= Y\n", "undeclared name 'Y'"},
      {"var X\nX <= \n", "expected expression"},
      {"var X\nX X\n", "expected '<='"},
      {"cons c +\nvar X\nc <= X\n", "needs 1 argument"},
      {"cons c + *\n", "variance marker"},
      {"var X\nvar X\n", "already in use"},
      {"cons c\nvar c\n", "already in use"},
      {"var X\ncons c + +\nc(X) <= X\n", "expected ','"},
      {"var X Y\nX <= Y extra\n", "trailing input"},
  };
  for (const Case &C : Cases) {
    ConstraintSystemFile System;
    Status St = System.parse(C.Text);
    EXPECT_FALSE(St.ok()) << C.Text;
    EXPECT_EQ(St.code(), ErrorCode::ParseError) << C.Text;
    EXPECT_NE(St.message().find("line "), std::string::npos) << St;
    EXPECT_NE(St.message().find(C.Needle), std::string::npos)
        << "got: " << St << "\nfor: " << C.Text;
  }
}

TEST(ConstraintFileTest, AddLineErrorTaxonomy) {
  // Incremental addLine distinguishes malformed text (ParseError) from a
  // system/solver mismatch (FailedPrecondition), and leaves both the
  // system and the solver untouched on failure.
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms,
                          makeConfig(GraphForm::Inductive,
                                     CycleElim::Online));
  ConstraintSystemFile System;
  ASSERT_TRUE(System.adoptDeclarations(Solver).ok());

  ASSERT_TRUE(System.addLine("var X", Solver).ok());
  ASSERT_TRUE(System.addLine("cons a", Solver).ok());
  ASSERT_TRUE(System.addLine("a <= X", Solver).ok());

  Status Parse = System.addLine("a <=", Solver);
  EXPECT_FALSE(Parse.ok());
  EXPECT_EQ(Parse.code(), ErrorCode::ParseError);

  // A solver that grew variables behind the system's back: declaring
  // more would desynchronise declaration order from creation order, so
  // the precondition check fires before anything is mutated. (Constraint
  // lines still work — extra solver variables do not break the mapping.)
  VarId Extra = Solver.freshVar("undeclared");
  (void)Extra;
  ConstraintSystemFile Stale;
  ASSERT_TRUE(Stale.adoptDeclarations(Solver).ok());
  Solver.freshVar("undeclared2");
  EXPECT_TRUE(Stale.addLine("a <= X", Solver).ok());
  Status Skew = Stale.addLine("var W", Solver);
  EXPECT_FALSE(Skew.ok());
  EXPECT_EQ(Skew.code(), ErrorCode::FailedPrecondition);
}

TEST(ConstraintFileTest, NestedApplications) {
  ConstraintSystemFile System;
  Status Parsed = System.parse("var X Y\n"
                               "cons pair + +\n"
                               "cons a\n"
                               "pair(pair(a, a), a) <= X\n"
                               "X <= pair(Y, 1)\n");
  ASSERT_TRUE(Parsed.ok()) << Parsed;
  auto LS = solve(System, makeConfig(GraphForm::Inductive,
                                     CycleElim::Online),
                  "Y");
  ASSERT_EQ(LS.size(), 1u);
  EXPECT_NE(LS[0].find("pair(a, a)"), std::string::npos);
}
