//===- net/LaneStats.h - Per-lane serving accumulators ----------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-lane accumulators for the read wave. During a wave every lane
/// records into its own slot with plain (non-atomic) stores; the wave
/// barrier of support/ThreadPool provides the happens-before edge under
/// which the event-loop thread merges the slots afterwards — the same
/// discipline the solver's parallel least-solution pass uses for its
/// SolverStats deltas. The slots are CacheAligned so two lanes bumping
/// their counters never write the same cache line (the Huron false-
/// sharing repair applied at allocation time rather than detected at
/// run time), and a static_assert pins the padded layout.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_LANESTATS_H
#define POCE_NET_LANESTATS_H

#include "support/CacheAligned.h"
#include "support/Metrics.h"

#include <cstdint>
#include <vector>

namespace poce {
namespace net {

/// One read lane's accumulator for the current wave. LatenciesUs is
/// drained (and cleared) by the loop thread after the barrier, so its
/// capacity is reused across waves and steady-state waves allocate
/// nothing.
struct LaneAccum {
  uint64_t Queries = 0;  ///< ls/pts/alias executed on this lane.
  uint64_t Errors = 0;   ///< Requests answered with an err reply.
  std::vector<uint64_t> LatenciesUs; ///< Per-request latencies this wave.

  void clear() {
    Queries = 0;
    Errors = 0;
    LatenciesUs.clear();
  }
};

static_assert(cacheAlignedLayoutOk<LaneAccum>,
              "LaneAccum slots must be cache-line padded and aligned");
static_assert(sizeof(CacheAligned<LaneAccum>) % CacheLineBytes == 0,
              "padded slot size must round to whole cache lines");

/// The per-lane slot array: index with the lane id ThreadPool hands each
/// chunk callback.
using LaneAccumSlots = std::vector<CacheAligned<LaneAccum>>;

} // namespace net
} // namespace poce

#endif // POCE_NET_LANESTATS_H
