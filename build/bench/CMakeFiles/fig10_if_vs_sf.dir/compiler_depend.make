# Empty compiler generated dependencies file for fig10_if_vs_sf.
# This may be replaced when dependencies are built.
