//===- support/Arena.h - Chunked bump-pointer allocator ---------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump-pointer arena for allocation patterns with a single
/// collective lifetime: many small nodes or arrays built together and
/// discarded (or rebuilt) together. Allocation is a pointer bump in the
/// current slab — no per-object header, no free list — and the arena never
/// recycles individual objects, so pointers stay valid until reset() or
/// destruction.
///
/// Two solver-side consumers drive the shape of the API:
///
///  * the wave-closure CSR edge rows (ConstraintSolver), rebuilt whenever
///    the cached topological order is invalidated — reset() reuses the
///    retained slabs so steady-state rebuilds allocate no fresh memory;
///  * the minic AST node pool (TranslationUnit), where create<T>() places
///    non-trivially-destructible nodes whose destructors the owner runs
///    before the arena releases the slabs.
///
/// The arena does not run destructors itself: trivially destructible
/// payloads (the common case: plain arrays and PODs) need nothing, and
/// owners of non-trivial payloads track their objects — keeping the arena
/// free of per-object bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_ARENA_H
#define POCE_SUPPORT_ARENA_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace poce {

/// Chunked bump allocator. Not thread-safe; one arena per owner.
class Arena {
public:
  /// \p SlabBytes is the size of the first slab; subsequent slabs double
  /// up to MaxSlabBytes so large arenas stay O(log n) in slab count.
  explicit Arena(size_t SlabBytes = 4096) : FirstSlabBytes(SlabBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Size bytes aligned to \p Align. Alignment must be a power
  /// of two no larger than alignof(std::max_align_t).
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t Ptr = (Cursor + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Ptr + Size > SlabEnd) {
      newSlab(Size + Align);
      Ptr = (Cursor + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Cursor = Ptr + Size;
    Allocated += Size;
    return reinterpret_cast<void *>(Ptr);
  }

  /// Uninitialized array of \p N objects of trivially destructible \p T
  /// (value-construct elements yourself; the arena never destroys them).
  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Placement-constructs a \p T. The caller owns the destructor call for
  /// non-trivially-destructible types.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    return new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(CtorArgs)...);
  }

  /// Rewinds every slab without releasing it: the next allocations reuse
  /// the retained memory. Invalidates all outstanding pointers.
  void reset() {
    NextSlab = 0;
    Allocated = 0;
    if (Slabs.empty()) {
      Cursor = SlabEnd = 0;
      return;
    }
    beginSlab(0);
    NextSlab = 1;
  }

  /// Bytes handed out since construction or the last reset().
  size_t bytesAllocated() const { return Allocated; }
  /// Bytes held in slabs (retained across reset()).
  size_t bytesReserved() const {
    size_t Total = 0;
    for (const Slab &S : Slabs)
      Total += S.Bytes;
    return Total;
  }
  size_t numSlabs() const { return Slabs.size(); }

private:
  struct Slab {
    std::unique_ptr<char[]> Memory;
    size_t Bytes;
  };

  void beginSlab(size_t Index) {
    Cursor = reinterpret_cast<uintptr_t>(Slabs[Index].Memory.get());
    SlabEnd = Cursor + Slabs[Index].Bytes;
  }

  /// Makes a slab with at least \p MinBytes usable: first the next
  /// retained slab from a previous reset() that is large enough (smaller
  /// retained slabs are passed over and stay owned for future resets),
  /// else a fresh slab of doubling size.
  void newSlab(size_t MinBytes) {
    while (NextSlab < Slabs.size()) {
      size_t Index = NextSlab++;
      if (Slabs[Index].Bytes >= MinBytes) {
        beginSlab(Index);
        return;
      }
    }
    size_t Bytes = Slabs.empty() ? FirstSlabBytes
                                 : std::min(Slabs.back().Bytes * 2,
                                            size_t(1) << 20);
    if (Bytes < MinBytes)
      Bytes = MinBytes;
    Slabs.push_back({std::unique_ptr<char[]>(new char[Bytes]), Bytes});
    NextSlab = Slabs.size();
    beginSlab(Slabs.size() - 1);
  }

  size_t FirstSlabBytes;
  std::vector<Slab> Slabs;
  size_t NextSlab = 0; ///< First retained slab not yet reused after reset().
  uintptr_t Cursor = 0, SlabEnd = 0;
  size_t Allocated = 0;
};

} // namespace poce

#endif // POCE_SUPPORT_ARENA_H
