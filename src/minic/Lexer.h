//===- minic/Lexer.h - MiniC lexer ------------------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Handles C89/C99 tokens, both comment
/// styles, string/char escapes, and skips preprocessor lines (inputs are
/// expected to be preprocessed, as in the paper's benchmark setup).
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MINIC_LEXER_H
#define POCE_MINIC_LEXER_H

#include "minic/Diagnostics.h"
#include "minic/Token.h"

#include <string>
#include <string_view>
#include <vector>

namespace poce {
namespace minic {

/// Lexes a MiniC source buffer into tokens.
class Lexer {
public:
  Lexer(std::string_view Source, Diagnostics &Diags);

  /// Lexes and returns the next token (EndOfFile at the end, repeatedly).
  Token next();

  /// Lexes the whole buffer, including the trailing EndOfFile token.
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLocation location() const { return {Line, Column}; }

  Token makeToken(TokenKind Kind, SourceLocation Loc,
                  std::string Text = std::string());
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexCharLiteral(SourceLocation Loc);
  Token lexStringLiteral(SourceLocation Loc);
  void lexEscape(std::string &Out);

  std::string_view Source;
  Diagnostics &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace minic
} // namespace poce

#endif // POCE_MINIC_LEXER_H
