//===- tests/workload_test.cpp - Workload generator unit tests -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "workload/ProgramGenerator.h"
#include "workload/RandomConstraints.h"
#include "workload/Suite.h"

#include <gtest/gtest.h>

using namespace poce;
using namespace poce::workload;

TEST(ProgramGeneratorTest, Deterministic) {
  ProgramSpec Spec;
  Spec.Name = "det";
  Spec.TargetAstNodes = 3000;
  Spec.Seed = 42;
  EXPECT_EQ(generateProgram(Spec), generateProgram(Spec));
  ProgramSpec Other = Spec;
  Other.Seed = 43;
  EXPECT_NE(generateProgram(Spec), generateProgram(Other));
}

class GeneratorSizeTest : public testing::TestWithParam<uint32_t> {};

TEST_P(GeneratorSizeTest, ParsesCleanlyAndTracksTarget) {
  ProgramSpec Spec;
  Spec.Name = "size";
  Spec.TargetAstNodes = GetParam();
  Spec.Seed = GetParam() * 31 + 7;
  auto Program = prepareProgram(Spec);
  ASSERT_TRUE(Program->Ok) << (Program->Errors.empty()
                                   ? "?"
                                   : Program->Errors[0]);
  EXPECT_GT(Program->Lines, 0u);
  // Size calibration: within a factor of two of the target for programs
  // large enough to contain several modules.
  if (GetParam() >= 2000) {
    EXPECT_GT(Program->AstNodes, GetParam() / 2);
    EXPECT_LT(Program->AstNodes, GetParam() * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizeTest,
                         testing::Values(500u, 2000u, 8000u, 20000u),
                         [](const auto &Info) {
                           return "target" + std::to_string(Info.param);
                         });

TEST(ProgramGeneratorTest, ProgramsContainCycleFormingIdioms) {
  ProgramSpec Spec;
  Spec.Name = "idioms";
  Spec.TargetAstNodes = 6000;
  Spec.Seed = 5;
  std::string Source = generateProgram(Spec);
  EXPECT_NE(Source.find("swap"), std::string::npos);
  EXPECT_NE(Source.find("malloc"), std::string::npos);
  EXPECT_NE(Source.find("fnptr"), std::string::npos);
  EXPECT_NE(Source.find("->next"), std::string::npos);
}

TEST(SuiteTest, CatalogMatchesPaper) {
  auto Suite = paperSuite();
  ASSERT_EQ(Suite.size(), 27u);
  EXPECT_EQ(Suite.front().Name, "allroots");
  EXPECT_EQ(Suite.back().Name, "povray-2.2");
  EXPECT_EQ(Suite.back().TargetAstNodes, 87391u);
  // Sizes ascend.
  for (size_t I = 1; I < Suite.size(); ++I)
    EXPECT_GT(Suite[I].TargetAstNodes, Suite[I - 1].TargetAstNodes);
}

TEST(SuiteTest, ScaleAndFilter) {
  auto Scaled = paperSuite(0.5);
  ASSERT_EQ(Scaled.size(), 27u);
  EXPECT_EQ(Scaled.back().TargetAstNodes, 87391u / 2);
  auto Filtered = paperSuite(1.0, 10000);
  for (const ProgramSpec &Spec : Filtered)
    EXPECT_LE(Spec.TargetAstNodes, 10000u);
  EXPECT_LT(Filtered.size(), paperSuite().size());
}

TEST(RandomConstraintsTest, EmissionMatchesShape) {
  PRNG Rng(3);
  RandomConstraintShape Shape = randomConstraintShape(40, 20, 0.05, Rng);
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms,
                          makeConfig(GraphForm::Inductive, CycleElim::None));
  workload::emitRandomConstraints(Shape, Solver);
  EXPECT_EQ(Solver.stats().VarsCreated, 40u);
  // Every initial constraint lands in the graph (minus duplicates and
  // mismatches, which the shape cannot contain).
  EXPECT_GE(Solver.stats().Work, Shape.VarVar.size() +
                                     Shape.SourceVar.size() +
                                     Shape.VarSink.size());
}
