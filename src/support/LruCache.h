//===- support/LruCache.h - Bounded least-recently-used cache ---*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small bounded LRU map used by serve/QueryEngine to cap the number of
/// materialized least-solution views held in memory. Keys hash into an
/// unordered_map whose values live in a recency-ordered list; a hit
/// splices the entry to the front, an insert past capacity evicts the
/// back. Eviction count is exposed so the query engine can report cache
/// pressure alongside hit rates.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_LRUCACHE_H
#define POCE_SUPPORT_LRUCACHE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace poce {

template <typename Key, typename Value> class LruCache {
public:
  explicit LruCache(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Returns the cached value for \p K and marks it most-recently-used,
  /// or nullptr when absent. The pointer stays valid until the next
  /// put() or erase().
  Value *get(const Key &K) {
    auto It = Index.find(K);
    if (It == Index.end())
      return nullptr;
    Entries.splice(Entries.begin(), Entries, It->second);
    return &It->second->second;
  }

  /// Inserts or overwrites \p K, marking it most-recently-used. Evicts
  /// the least-recently-used entry if this pushes the cache past
  /// capacity.
  void put(const Key &K, Value V) {
    auto It = Index.find(K);
    if (It != Index.end()) {
      It->second->second = std::move(V);
      Entries.splice(Entries.begin(), Entries, It->second);
      return;
    }
    Entries.emplace_front(K, std::move(V));
    Index.emplace(K, Entries.begin());
    if (Entries.size() > Capacity) {
      Index.erase(Entries.back().first);
      Entries.pop_back();
      ++Evicted;
    }
  }

  /// Removes \p K if present; returns whether it was.
  bool erase(const Key &K) {
    auto It = Index.find(K);
    if (It == Index.end())
      return false;
    Entries.erase(It->second);
    Index.erase(It);
    return true;
  }

  void clear() {
    Entries.clear();
    Index.clear();
  }

  size_t size() const { return Entries.size(); }
  size_t capacity() const { return Capacity; }
  uint64_t evictions() const { return Evicted; }

private:
  size_t Capacity;
  uint64_t Evicted = 0;
  std::list<std::pair<Key, Value>> Entries;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      Index;
};

} // namespace poce

#endif // POCE_SUPPORT_LRUCACHE_H
