//===- workload/Suite.h - Benchmark suite catalog ---------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite mirroring the paper's Table 1: one synthetic
/// program per original benchmark name, sized to the same AST-node count
/// the paper reports (the programs themselves are generated — see the
/// substitution note in DESIGN.md). Helpers prepare (generate + parse) a
/// program and expose its metrics.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_WORKLOAD_SUITE_H
#define POCE_WORKLOAD_SUITE_H

#include "andersen/Andersen.h"
#include "minic/AST.h"
#include "setcon/SolverOptions.h"
#include "workload/ProgramGenerator.h"

#include <memory>
#include <vector>

namespace poce {
namespace workload {

/// The full suite (27 entries, 0.7k to 87k target AST nodes), in the
/// paper's size order. \p Scale scales every target (benches use it to
/// bound runtime); \p MaxAstNodes, if nonzero, drops larger entries.
std::vector<ProgramSpec> paperSuite(double Scale = 1.0,
                                    uint32_t MaxAstNodes = 0);

/// A generated-and-parsed benchmark program.
struct PreparedProgram {
  ProgramSpec Spec;
  std::string Source;
  minic::TranslationUnit Unit;
  uint64_t AstNodes = 0;
  uint32_t Lines = 0;
  bool Ok = false;
  std::vector<std::string> Errors;
};

/// Generates and parses \p Spec. The result owns the AST.
std::unique_ptr<PreparedProgram> prepareProgram(const ProgramSpec &Spec);

/// One entry of a batch solve: program metrics plus the analysis result.
struct BatchSolveResult {
  ProgramSpec Spec;
  uint64_t AstNodes = 0;
  uint32_t Lines = 0;
  bool Ok = false; ///< Generation + parse succeeded and the solve ran.
  std::vector<std::string> Errors;
  andersen::AnalysisResult Result;
  /// Wall seconds for this entry (generate + parse + solve), as seen by
  /// the lane that ran it.
  double EntrySeconds = 0;
};

/// Prepares and solves every spec under \p Options, distributing the
/// independent inputs over \p Threads execution lanes (0 = one per
/// hardware thread, 1 = sequential). Results are returned in input order
/// and are bit-identical for any thread count: each entry owns its
/// constructor table, terms, solver, and (for oracle configurations) its
/// witness oracle, so entries share nothing. When \p Threads > 1 each
/// entry's solve runs with SolverOptions::Threads = 1 — the batch level is
/// where the hardware parallelism goes, not nested pools per solve.
std::vector<BatchSolveResult> solveSuite(const std::vector<ProgramSpec> &Specs,
                                         const SolverOptions &Options,
                                         unsigned Threads = 1,
                                         bool ExtractPointsTo = false);

} // namespace workload
} // namespace poce

#endif // POCE_WORKLOAD_SUITE_H
