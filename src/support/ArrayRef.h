//===- support/ArrayRef.h - Non-owning array view ---------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A constant, non-owning view of a contiguous sequence — the preferred
/// parameter type for APIs that only read a list of elements (callers can
/// pass C arrays, std::vector, SmallVector, or initializer lists without
/// copies). Modeled on llvm::ArrayRef. Like StringRef, an ArrayRef never
/// outlives the storage it points into; pass it by value and do not store
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_ARRAYREF_H
#define POCE_SUPPORT_ARRAYREF_H

#include "support/SmallVector.h"

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace poce {

/// Constant reference to [Data, Data + Length).
template <typename T> class ArrayRef {
public:
  using value_type = T;
  using iterator = const T *;
  using const_iterator = const T *;

  ArrayRef() = default;
  ArrayRef(const T *Data, size_t Length) : Data(Data), Length(Length) {}
  ArrayRef(const T *Begin, const T *End)
      : Data(Begin), Length(static_cast<size_t>(End - Begin)) {}

  /// From a single element.
  ArrayRef(const T &Element) : Data(&Element), Length(1) {}

  /// From containers with contiguous storage.
  ArrayRef(const std::vector<T> &V) : Data(V.data()), Length(V.size()) {}
  ArrayRef(const SmallVectorImpl<T> &V) : Data(V.data()), Length(V.size()) {}

  /// From a C array.
  template <size_t N>
  constexpr ArrayRef(const T (&Array)[N]) : Data(Array), Length(N) {}

  /// From an initializer list (must not outlive the full-expression it
  /// appears in).
  ArrayRef(std::initializer_list<T> IL)
      : Data(IL.begin() == IL.end() ? nullptr : IL.begin()),
        Length(IL.size()) {}

  const T *data() const { return Data; }
  size_t size() const { return Length; }
  bool empty() const { return Length == 0; }

  iterator begin() const { return Data; }
  iterator end() const { return Data + Length; }

  const T &operator[](size_t Index) const {
    assert(Index < Length && "ArrayRef index out of range!");
    return Data[Index];
  }

  const T &front() const {
    assert(!empty() && "front() on empty ArrayRef!");
    return Data[0];
  }
  const T &back() const {
    assert(!empty() && "back() on empty ArrayRef!");
    return Data[Length - 1];
  }

  /// The sub-array [Start, Start + Count) (Count clamped to the end).
  ArrayRef<T> slice(size_t Start, size_t Count) const {
    assert(Start <= Length && "slice start out of range!");
    return ArrayRef<T>(Data + Start,
                       Count < Length - Start ? Count : Length - Start);
  }

  /// Everything from \p Start on.
  ArrayRef<T> dropFront(size_t Count = 1) const {
    assert(Count <= Length && "dropFront() past the end!");
    return ArrayRef<T>(Data + Count, Length - Count);
  }

  ArrayRef<T> dropBack(size_t Count = 1) const {
    assert(Count <= Length && "dropBack() past the end!");
    return ArrayRef<T>(Data, Length - Count);
  }

  bool equals(ArrayRef<T> RHS) const {
    if (Length != RHS.Length)
      return false;
    for (size_t I = 0; I != Length; ++I)
      if (!(Data[I] == RHS.Data[I]))
        return false;
    return true;
  }

  /// Materializes an owning copy.
  std::vector<T> vec() const { return std::vector<T>(begin(), end()); }

private:
  const T *Data = nullptr;
  size_t Length = 0;
};

template <typename T> bool operator==(ArrayRef<T> LHS, ArrayRef<T> RHS) {
  return LHS.equals(RHS);
}
template <typename T> bool operator!=(ArrayRef<T> LHS, ArrayRef<T> RHS) {
  return !LHS.equals(RHS);
}

/// Deduces an ArrayRef from any supported source.
template <typename T> ArrayRef<T> makeArrayRef(const std::vector<T> &V) {
  return ArrayRef<T>(V);
}
template <typename T>
ArrayRef<T> makeArrayRef(const SmallVectorImpl<T> &V) {
  return ArrayRef<T>(V);
}
template <typename T, size_t N>
ArrayRef<T> makeArrayRef(const T (&Array)[N]) {
  return ArrayRef<T>(Array);
}

} // namespace poce

#endif // POCE_SUPPORT_ARRAYREF_H
