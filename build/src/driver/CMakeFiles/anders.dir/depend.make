# Empty dependencies file for anders.
# This may be replaced when dependencies are built.
