# Empty compiler generated dependencies file for points_to.
# This may be replaced when dependencies are built.
