/* A singly linked list library: the allocation, threading, and traversal
   idioms that drive points-to analysis in real C code. */

extern void *malloc(unsigned long n);
extern void free(void *p);

struct list {
  struct list *next;
  int *payload;
};

struct list *head;
int pool0, pool1, pool2;

struct list *cons(int *payload, struct list *tail) {
  struct list *cell = (struct list *)malloc(sizeof(struct list));
  cell->payload = payload;
  cell->next = tail;
  return cell;
}

struct list *push(int *payload) {
  head = cons(payload, head);
  return head;
}

int *last_payload(struct list *l) {
  struct list *cur = l;
  while (cur->next) {
    cur = cur->next;
  }
  return cur->payload;
}

struct list *reverse(struct list *l) {
  struct list *out = 0;
  struct list *cur = l;
  while (cur) {
    struct list *next = cur->next;
    cur->next = out;
    out = cur;
    cur = next;
  }
  return out;
}

int length(struct list *l) {
  int n = 0;
  for (struct list *cur = l; cur; cur = cur->next)
    n++;
  return n;
}

int main(void) {
  push(&pool0);
  push(&pool1);
  push(&pool2);
  head = reverse(head);
  int *p = last_payload(head);
  *p = length(head);
  return 0;
}
