file(REMOVE_RECURSE
  "CMakeFiles/cycle_demo.dir/cycle_demo.cpp.o"
  "CMakeFiles/cycle_demo.dir/cycle_demo.cpp.o.d"
  "cycle_demo"
  "cycle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
