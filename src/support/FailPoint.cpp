//===- support/FailPoint.cpp - Env-armed fault injection ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unistd.h>
#include <vector>

namespace poce {

std::atomic<int> FailPoint::ArmedCount{0};

namespace {

struct ArmedPoint {
  std::string Name;
  FailPoint::Mode Mode;
  uint64_t FireOnHit; // 1-based hit index that triggers
  uint64_t Hits = 0;
  bool Fired = false;
};

std::mutex &registryMutex() {
  static std::mutex Mutex;
  return Mutex;
}

std::vector<ArmedPoint> &registry() {
  static std::vector<ArmedPoint> Points;
  return Points;
}

bool parseMode(const std::string &Text, FailPoint::Mode &Out) {
  if (Text == "error")
    Out = FailPoint::Mode::Error;
  else if (Text == "short")
    Out = FailPoint::Mode::Short;
  else if (Text == "crash")
    Out = FailPoint::Mode::Crash;
  else if (Text == "off")
    Out = FailPoint::Mode::Off;
  else
    return false;
  return true;
}

} // namespace

FailPoint::Mode FailPoint::hitSlow(const char *Name) {
  Mode Action = Mode::Off;
  {
    std::lock_guard<std::mutex> Lock(registryMutex());
    for (ArmedPoint &Point : registry()) {
      if (Point.Fired || Point.Name != Name)
        continue;
      ++Point.Hits;
      if (Point.Hits != Point.FireOnHit)
        continue;
      Point.Fired = true;
      ArmedCount.fetch_sub(1, std::memory_order_relaxed);
      Action = Point.Mode;
      break;
    }
  }
  if (Action == Mode::Crash) {
    // Simulate SIGKILL at exactly this point: no flushes, no destructors,
    // no atexit. stderr is unbuffered so the marker still lands.
    std::fprintf(stderr, "failpoint '%s': crashing (_exit 137)\n", Name);
    _exit(137);
  }
  return Action;
}

Status FailPoint::armSpec(const std::string &Spec) {
  std::vector<ArmedPoint> Parsed;
  size_t Start = 0;
  while (Start <= Spec.size()) {
    size_t End = Spec.find(',', Start);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Start, End - Start);
    Start = End + 1;
    if (Entry.empty())
      continue;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return Status::error(ErrorCode::InvalidArgument,
                           "failpoint spec entry '" + Entry +
                               "' is not name=mode[@N]");
    ArmedPoint Point;
    Point.Name = Entry.substr(0, Eq);
    std::string ModeText = Entry.substr(Eq + 1);
    Point.FireOnHit = 1;
    size_t At = ModeText.find('@');
    if (At != std::string::npos) {
      std::string NText = ModeText.substr(At + 1);
      ModeText = ModeText.substr(0, At);
      char *EndPtr = nullptr;
      unsigned long long N = std::strtoull(NText.c_str(), &EndPtr, 10);
      if (NText.empty() || *EndPtr != '\0' || N == 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "failpoint spec '" + Entry +
                                 "' has a bad hit count '" + NText + "'");
      Point.FireOnHit = N;
    }
    if (!parseMode(ModeText, Point.Mode))
      return Status::error(ErrorCode::InvalidArgument,
                           "failpoint spec '" + Entry +
                               "' has unknown mode '" + ModeText + "'");
    if (Point.Mode != Mode::Off)
      Parsed.push_back(std::move(Point));
  }
  std::lock_guard<std::mutex> Lock(registryMutex());
  for (ArmedPoint &Point : Parsed) {
    registry().push_back(std::move(Point));
    ArmedCount.fetch_add(1, std::memory_order_relaxed);
  }
  return Status();
}

void FailPoint::armFromEnv() {
  const char *Spec = std::getenv("POCE_FAILPOINTS");
  if (!Spec || !*Spec)
    return;
  Status St = armSpec(Spec);
  if (!St.ok())
    reportFatalError("POCE_FAILPOINTS: " + St.toString());
}

void FailPoint::disarmAll() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  for (const ArmedPoint &Point : registry())
    if (!Point.Fired)
      ArmedCount.fetch_sub(1, std::memory_order_relaxed);
  registry().clear();
}

} // namespace poce
