//===- andersen/Andersen.cpp - Points-to analysis driver -------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"

#include "minic/Lexer.h"
#include "minic/Parser.h"
#include "support/Timer.h"

#include <algorithm>

using namespace poce;
using namespace poce::andersen;

AnalysisResult poce::andersen::runAnalysis(const minic::TranslationUnit &Unit,
                                           ConstructorTable &Constructors,
                                           const SolverOptions &Options,
                                           const Oracle *WitnessOracle,
                                           bool ExtractPointsTo) {
  AnalysisResult Result;
  Timer AnalysisTimer;

  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options, WitnessOracle);
  ConstraintGenerator Generator(Solver);
  Generator.run(Unit);
  Solver.finalize();

  Result.AnalysisSeconds = AnalysisTimer.seconds();
  Result.Stats = Solver.stats();
  Result.FinalEdges = Solver.countFinalEdges();
  Result.NumLocations = static_cast<uint32_t>(Generator.locations().size());
  Result.NumSetVars = Solver.stats().VarsCreated;
  Result.Inconsistencies = Solver.inconsistencies();

  if (ExtractPointsTo) {
    for (const Location &Loc : Generator.locations()) {
      std::vector<std::string> Names;
      for (ExprId Term : Solver.leastSolution(Loc.Content)) {
        LocationId Target = Generator.locationOfRefTerm(Term);
        if (Target != ConstraintGenerator::NotFound)
          Names.push_back(Generator.locations()[Target].Name);
      }
      std::sort(Names.begin(), Names.end());
      Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
      Result.PointsTo.emplace(Loc.Name, std::move(Names));
    }
  }
  return Result;
}

GeneratorFn poce::andersen::makeGenerator(const minic::TranslationUnit &Unit) {
  return [&Unit](ConstraintSolver &Solver) {
    ConstraintGenerator Generator(Solver);
    Generator.run(Unit);
  };
}

bool poce::andersen::parseSource(const std::string &Source,
                                 minic::TranslationUnit &Unit,
                                 std::vector<std::string> *ErrorsOut,
                                 const std::string &FileName) {
  minic::Diagnostics Diags(FileName);
  minic::Lexer Lexer(Source, Diags);
  minic::Parser Parser(Lexer.lexAll(), Diags, Unit);
  bool Ok = Parser.parseTranslationUnit() && !Diags.hasErrors();
  if (ErrorsOut)
    *ErrorsOut = Diags.errors();
  return Ok;
}
