//===- support/ByteStream.cpp - Bounds-checked binary IO ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"

#include "support/FailPoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace poce {

uint64_t fnv1a64(const uint8_t *Data, size_t Size, uint64_t Seed) {
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Data[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

void ByteWriter::patchU64(size_t Offset, uint64_t Value) {
  for (int Shift = 0; Shift != 64; Shift += 8)
    Buffer[Offset + static_cast<size_t>(Shift / 8)] =
        static_cast<uint8_t>(Value >> Shift);
}

bool ByteReader::take(size_t N, const char *What) {
  if (Failed)
    return false;
  if (Size - Pos < N) {
    Failed = true;
    Error = std::string("truncated input: need ") + std::to_string(N) +
            " byte(s) for " + What + " at offset " + std::to_string(Pos) +
            " but only " + std::to_string(Size - Pos) + " remain";
    return false;
  }
  return true;
}

bool ByteReader::u8(uint8_t &Out) {
  if (!take(1, "u8"))
    return false;
  Out = Data[Pos++];
  return true;
}

bool ByteReader::u32(uint32_t &Out) {
  if (!take(4, "u32"))
    return false;
  uint32_t Value = 0;
  for (int Shift = 0; Shift != 32; Shift += 8)
    Value |= static_cast<uint32_t>(Data[Pos++]) << Shift;
  Out = Value;
  return true;
}

bool ByteReader::u64(uint64_t &Out) {
  if (!take(8, "u64"))
    return false;
  uint64_t Value = 0;
  for (int Shift = 0; Shift != 64; Shift += 8)
    Value |= static_cast<uint64_t>(Data[Pos++]) << Shift;
  Out = Value;
  return true;
}

bool ByteReader::str(std::string &Out) {
  uint32_t Length;
  if (!u32(Length))
    return false;
  if (!take(Length, "string body"))
    return false;
  Out.assign(reinterpret_cast<const char *>(Data + Pos), Length);
  Pos += Length;
  return true;
}

void ByteReader::fail(const std::string &Reason) {
  if (Failed)
    return;
  Failed = true;
  Error = Reason + " (at offset " + std::to_string(Pos) + ")";
}

bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Buffer,
                    std::string *ErrorOut) {
  FailPoint::Mode Fault = FailPoint::hit("bytestream.write");
  if (Fault == FailPoint::Mode::Error) {
    if (ErrorOut)
      *ErrorOut = FailPoint::injectedError("bytestream.write").message();
    return false;
  }
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    if (ErrorOut)
      *ErrorOut = "cannot open '" + Path + "' for writing";
    return false;
  }
  // Short mode writes only half the payload and then reports failure,
  // leaving the truncated file on disk — exactly the hazard
  // writeFileAtomic exists to rule out.
  size_t ToWrite =
      Fault == FailPoint::Mode::Short ? Buffer.size() / 2 : Buffer.size();
  size_t Written =
      ToWrite == 0 ? 0 : std::fwrite(Buffer.data(), 1, ToWrite, File);
  bool Ok = std::fclose(File) == 0 && Written == Buffer.size();
  if (!Ok && ErrorOut)
    *ErrorOut = "short write to '" + Path + "'";
  return Ok;
}

namespace {

Status posixError(const std::string &What) {
  return Status::error(ErrorCode::IoError,
                       What + ": " + std::strerror(errno));
}

/// fsyncs the directory containing \p Path so a just-renamed entry is
/// durable across power loss.
Status fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir =
      Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd < 0)
    return posixError("cannot open directory '" + Dir + "' for fsync");
  Status St;
  if (::fsync(DirFd) != 0)
    St = posixError("fsync directory '" + Dir + "'");
  ::close(DirFd);
  return St;
}

} // namespace

Status writeFileAtomic(const std::string &Path,
                       const std::vector<uint8_t> &Buffer) {
  const std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return posixError("cannot open '" + Tmp + "' for writing");

  Status St;
  FailPoint::Mode Fault = FailPoint::hit("atomic.write");
  size_t ToWrite =
      Fault == FailPoint::Mode::Short ? Buffer.size() / 2 : Buffer.size();
  size_t Done = 0;
  while (Done < ToWrite) {
    ssize_t N = ::write(Fd, Buffer.data() + Done, ToWrite - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      St = posixError("write to '" + Tmp + "' failed");
      break;
    }
    Done += static_cast<size_t>(N);
  }
  if (St.ok() && Fault != FailPoint::Mode::Off)
    St = FailPoint::injectedError("atomic.write");

  if (St.ok() && FailPoint::hit("atomic.before_fsync") != FailPoint::Mode::Off)
    St = FailPoint::injectedError("atomic.before_fsync");
  if (St.ok() && ::fsync(Fd) != 0)
    St = posixError("fsync '" + Tmp + "'");
  if (::close(Fd) != 0 && St.ok())
    St = posixError("close '" + Tmp + "'");

  if (St.ok() &&
      FailPoint::hit("atomic.before_rename") != FailPoint::Mode::Off)
    St = FailPoint::injectedError("atomic.before_rename");
  if (St.ok() && ::rename(Tmp.c_str(), Path.c_str()) != 0)
    St = posixError("rename '" + Tmp + "' to '" + Path + "'");

  if (!St.ok()) {
    // The target was never touched; drop the partial temp file.
    ::unlink(Tmp.c_str());
    return St;
  }
  return fsyncParentDir(Path).withContext("after renaming '" + Path + "'");
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Buffer,
                   std::string *ErrorOut) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (ErrorOut)
      *ErrorOut = "cannot open '" + Path + "' for reading";
    return false;
  }
  Buffer.clear();
  uint8_t Chunk[65536];
  size_t Got;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Buffer.insert(Buffer.end(), Chunk, Chunk + Got);
  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  if (!Ok && ErrorOut)
    *ErrorOut = "read error on '" + Path + "'";
  return Ok;
}

} // namespace poce
