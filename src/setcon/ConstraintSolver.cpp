//===- setcon/ConstraintSolver.cpp - Inclusion constraint solver ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintSolver.h"

#include "graph/TarjanSCC.h"
#include "setcon/Oracle.h"
#include "setcon/Preprocess.h"
#include "support/CacheAligned.h"
#include "support/Debug.h"
#include "support/ErrorHandling.h"
#include "support/FailPoint.h"
#include "support/MemUsage.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>

#define POCE_DEBUG_TYPE "setcon"

using namespace poce;

namespace {

// Per-phase timing is off unless a trace is armed or a server enabled
// MetricsRegistry timing: the closure loop runs once per addConstraint, so
// the untimed path must stay at a single relaxed load + branch (the <2%
// micro_solver regression budget).
inline bool phaseTimingOn() {
  return MetricsRegistry::timingEnabled() || trace::enabled();
}

Histogram &closureHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_solver_closure_us", "Closure-loop (worklist drain) wall time");
  return H;
}

Histogram &cycleSearchHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_solver_cycle_search_us",
      "Partial online cycle detection per variable-variable insertion");
  return H;
}

Histogram &leastSolutionHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_solver_ls_us", "Least-solution computation wall time");
  return H;
}

Histogram &wavePassHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_solver_wave_pass_us",
      "One topologically ordered wave-propagation sweep");
  return H;
}

Histogram &preprocessHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_solver_preprocess_us",
      "Offline preprocessing (HVN labeling + Nuutila SCC condensation)");
  return H;
}

Histogram &waveOrderHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_solver_wave_order_us",
      "Wave-order rebuild (condense + level + CSR edge layout)");
  return H;
}

} // namespace

ConstraintSolver::ConstraintSolver(TermTable &Terms, SolverOptions Options,
                                   const Oracle *WitnessOracle)
    : Terms(Terms), Options(Options), WitnessOracle(WitnessOracle),
      OrderRng(Options.Seed) {
  if (Options.Elim == CycleElim::Oracle && !WitnessOracle)
    reportFatalError("oracle cycle elimination requires an Oracle instance");
  if (Options.Elim == CycleElim::Periodic && Options.PeriodicInterval == 0)
    reportFatalError("periodic cycle elimination requires a nonzero interval");
  NextPeriodicWork = Options.PeriodicInterval;
  PreprocessDone = Options.Preprocess != PreprocessMode::Offline;
}

//===----------------------------------------------------------------------===//
// Variable creation
//===----------------------------------------------------------------------===//

VarId ConstraintSolver::freshVar(std::string_view Name) {
  invalidateSolutions();
  uint32_t CreationIndex = numCreations();

  if (WitnessOracle && Options.Elim == CycleElim::Oracle) {
    uint32_t Witness = WitnessOracle->witness(CreationIndex);
    if (Witness != CreationIndex) {
      assert(Witness < CreationIndex &&
             "oracle witness must be created before its members!");
      VarId Existing = VarOfCreation[Witness];
      VarOfCreation.push_back(Existing);
      ++Stats.OracleSubstitutions;
      return Existing;
    }
  }

  VarId Var = static_cast<VarId>(Vars.size());
  invalidateWaveOrder();
  Vars.emplace_back();
  VarNode &Node = Vars.back();
  Node.Name = std::string(Name);
  Node.CreationIndex = CreationIndex;
  switch (Options.Order) {
  case OrderKind::Random:
    Node.Order = (static_cast<uint64_t>(OrderRng.nextU32()) << 32) | Var;
    break;
  case OrderKind::Creation:
    Node.Order = Var;
    break;
  case OrderKind::ReverseCreation:
    Node.Order = ~static_cast<uint64_t>(Var);
    break;
  }
  uint32_t ForwardingId = Forwarding.makeSet();
  assert(ForwardingId == Var && "forwarding table out of sync!");
  (void)ForwardingId;
  VarOfCreation.push_back(Var);
  ++Stats.VarsCreated;
  return Var;
}

uint32_t ConstraintSolver::numLiveVars() const {
  uint32_t Count = 0;
  for (VarId Var = 0; Var != numVars(); ++Var)
    if (Forwarding.isRepresentative(Var))
      ++Count;
  return Count;
}

//===----------------------------------------------------------------------===//
// Worklist and resolution rules
//===----------------------------------------------------------------------===//

void ConstraintSolver::addConstraint(ExprId Lhs, ExprId Rhs,
                                     std::string Tag) {
  // Record provenance before processing: BaseRoots must list every
  // accepted top-level input (aborted batches are rolled back by the
  // caller, so nothing is recorded once the solve is aborted).
  if (!Stats.Aborted)
    BaseRoots.push_back({Lhs, Rhs, std::move(Tag)});
  processRoot(Lhs, Rhs);
}

void ConstraintSolver::processRoot(ExprId Lhs, ExprId Rhs) {
  invalidateSolutions();
  if (offlinePending()) {
    // Defer the initial bulk load: the offline pass analyzes the whole
    // pending set at the first ensureClosed(), then replays it in input
    // order through the schedule this add would have used.
    if (!Stats.Aborted)
      PreRoots.push_back({Lhs, Rhs});
    return;
  }
  if (waveMode()) {
    // Defer: the wave drain replays roots in input order, so the deferred
    // schedule of structural work matches the eager one item for item.
    if (!Stats.Aborted)
      RootQueue.push_back({Lhs, Rhs, /*Derived=*/false, /*FlushDelta=*/false});
    return;
  }
  enqueue(Lhs, Rhs, /*Derived=*/false);
  drainWorklist();
}

void ConstraintSolver::ensureClosed() {
  if (offlinePending())
    runOfflinePass();
  if (waveMode())
    drainWave();
  else
    drainWorklist();
}

void ConstraintSolver::runOfflinePass() {
  assert(!Draining && "offline pass requested mid-drain");
  // Mark done first: the replay below re-enters closure machinery whose
  // observers (varVarDigraph during periodic passes) call ensureClosed().
  PreprocessDone = true;
  if (PreRoots.empty())
    return;
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;

  OfflineEquivalence Equiv = offlinePreprocess(
      Terms, PreRoots, numVars(),
      [this](VarId Var) { return Vars[Var].Order; });
  Stats.OfflineCollapsedVars = Equiv.SCCCollapsedVars;
  Stats.OfflineSCCs = Equiv.NontrivialSCCs;
  Stats.HVNLabels = Equiv.Labels;
  if (!Equiv.Merges.empty()) {
    invalidateWaveOrder();
    for (auto [Var, Witness] : Equiv.Merges) {
      bool United = Forwarding.unite(Var, Witness);
      assert(United && "offline merge of a non-representative!");
      (void)United;
    }
  }
  if (Timed) {
    preprocessHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("solver.preprocess", StartUs);
  }

  // Replay the deferred bulk load through the untouched online path. The
  // merged classes make every replayed constraint resolve against its
  // class witness, exactly as if the online search had collapsed the
  // cycle (or the copy chain had one name) from the start.
  std::vector<std::pair<ExprId, ExprId>> Roots;
  Roots.swap(PreRoots);
  if (waveMode()) {
    // Wave mode would have parked these on the root queue; drainWave
    // (our caller, via ensureClosed) consumes them FIFO as usual.
    for (auto [Lhs, Rhs] : Roots)
      RootQueue.push_back({Lhs, Rhs, /*Derived=*/false, /*FlushDelta=*/false});
    return;
  }
  // Worklist mode closed eagerly per add: replay one root at a time so
  // per-batch budgets (deadline, edge budget) keep their per-add scope.
  for (auto [Lhs, Rhs] : Roots) {
    if (Stats.Aborted)
      break;
    enqueue(Lhs, Rhs, /*Derived=*/false);
    drainWorklist();
  }
}

void ConstraintSolver::invalidateSolutions() {
  if (!Finalized)
    return;
  Finalized = false;
  // Keep the settled solutions aside: the next finalize() diffs the fresh
  // LSBits against them and bumps the mutation epochs of exactly the
  // variables whose solutions changed (inductive form; standard form
  // bumps eagerly at each source arrival and leaves these empty).
  PrevLSBits = std::move(LSBits);
  LSBits.clear();
  LSView.clear();
  LSViewBuilt.clear();
}

void ConstraintSolver::enqueue(ExprId Lhs, ExprId Rhs, bool Derived) {
  if (!Stats.Aborted)
    Worklist.push_back({Lhs, Rhs, Derived, /*FlushDelta=*/false});
}

void ConstraintSolver::scheduleFlush(VarId Var) {
  if (Stats.Aborted)
    return;
  if (waveMode()) {
    // Deltas accumulate until the next sweep instead of racing down the
    // worklist. A delivery at or before the sweep cursor means a cycle
    // formed after the order was cached pushed sources backwards; the
    // variable simply re-enters the heap (and is counted).
    PendingWave.push_back(Var);
    if (InWavePass && WaveIndex[Var] <= WaveCursor)
      ++Stats.WaveFallbacks;
    return;
  }
  Worklist.push_back({Var, 0, /*Derived=*/true, /*FlushDelta=*/true});
}

void ConstraintSolver::drainWorklist() {
  if (Draining)
    return;
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  Draining = true;
  beginBatchBudgets();
  while (!Worklist.empty() && !Stats.Aborted) {
    WorkItem Item = Worklist.back();
    Worklist.pop_back();
    if (Item.FlushDelta) {
      flushDelta(Item.Lhs);
    } else {
      ++Stats.ConstraintsProcessed;
      resolve(Item.Lhs, Item.Rhs, Item.Derived);
    }
    // Offline passes run at a safe point, between worklist items.
    if (Options.Elim == CycleElim::Periodic && Stats.Work >= NextPeriodicWork) {
      runPeriodicPass();
      NextPeriodicWork = Stats.Work + Options.PeriodicInterval;
    }
    checkBatchBudgets();
  }
  Draining = false;
  if (Timed) {
    closureHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("solver.closure", StartUs);
  }
}

//===----------------------------------------------------------------------===//
// Wave closure
//===----------------------------------------------------------------------===//

void ConstraintSolver::drainWave() {
  if (Draining)
    return;
  if (RootQueue.empty() && Worklist.empty() && PendingWave.empty())
    return;
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  Draining = true;
  beginBatchBudgets();
  size_t RootHead = 0;
  while (!Stats.Aborted) {
    // Structural phase: derived items LIFO, the next deferred root only
    // when the worklist is empty — exactly the schedule the eager path
    // produces, so forms without source deltas (inductive form, DiffProp
    // off) close bit-identically to worklist mode.
    if (!Worklist.empty() || RootHead != RootQueue.size()) {
      WorkItem Item;
      if (!Worklist.empty()) {
        Item = Worklist.back();
        Worklist.pop_back();
      } else {
        Item = RootQueue[RootHead++];
      }
      assert(!Item.FlushDelta && "wave mode keeps flushes off the worklist");
      ++Stats.ConstraintsProcessed;
      resolve(Item.Lhs, Item.Rhs, Item.Derived);
      // Offline passes run at a safe point, between worklist items.
      if (Options.Elim == CycleElim::Periodic &&
          Stats.Work >= NextPeriodicWork) {
        runPeriodicPass();
        NextPeriodicWork = Stats.Work + Options.PeriodicInterval;
      }
      checkBatchBudgets();
      continue;
    }
    // Propagation phase. Sweeps can enqueue sink resolutions (constructor
    // decomposition happens element-wise), which return to the structural
    // phase; the drain alternates until both phases run dry.
    if (PendingWave.empty())
      break;
    runWavePass();
  }
  RootQueue.clear();
  Draining = false;
  if (Timed) {
    closureHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("solver.closure", StartUs);
  }
}

void ConstraintSolver::runWavePass() {
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  if (!WaveOrderValid)
    buildWaveOrder();
  ++Stats.WavePasses;

  // Min-heap on topological position: a variable is flushed only once
  // every delta reachable from earlier positions has landed, so acyclic
  // regions flush exactly once per sweep no matter how deltas interleave.
  auto ByPosition = [this](VarId A, VarId B) {
    return WaveIndex[A] > WaveIndex[B];
  };
  WaveHeap.clear();
  WaveHeap.swap(PendingWave);
  std::make_heap(WaveHeap.begin(), WaveHeap.end(), ByPosition);
  InWavePass = true;
  uint32_t LastLevel = UINT32_MAX;
  while (!WaveHeap.empty() && !Stats.Aborted) {
    std::pop_heap(WaveHeap.begin(), WaveHeap.end(), ByPosition);
    VarId Var = WaveHeap.back();
    WaveHeap.pop_back();
    // Collapsed away between scheduling and the sweep, or already covered
    // because an earlier pop flushed the refilled delta.
    if (!Forwarding.isRepresentative(Var) || Vars[Var].SrcDelta.empty())
      continue;
    WaveCursor = WaveIndex[Var];
    if (WaveLevel[Var] != LastLevel) {
      LastLevel = WaveLevel[Var];
      ++Stats.LevelsPropagated;
    }
    flushDelta(Var);
    checkBatchBudgets();
    // Deliveries during the flush park their targets in PendingWave; fold
    // them into the heap (fallbacks included — they pop next).
    for (VarId Scheduled : PendingWave) {
      WaveHeap.push_back(Scheduled);
      std::push_heap(WaveHeap.begin(), WaveHeap.end(), ByPosition);
    }
    PendingWave.clear();
  }
  InWavePass = false;
  if (Stats.Aborted)
    WaveHeap.clear();
  if (Timed) {
    wavePassHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("solver.wave_pass", StartUs);
  }
}

void ConstraintSolver::buildWaveOrder() {
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  Digraph G = varVarDigraph();
  SCCResult SCCs = computeSCCs(G);
  Digraph Cond = condense(G, SCCs);

  // Level the condensation Kahn-style. Tarjan numbers components in
  // reverse topological order — every condensation edge goes from a
  // higher component id to a lower one — so a single descending sweep
  // sees each component after all of its predecessors.
  uint32_t NumComps = SCCs.numComponents();
  std::vector<uint32_t> CompLevel(NumComps, 0);
  for (uint32_t Comp = NumComps; Comp-- > 0;)
    for (uint32_t Succ : Cond.successors(Comp)) {
      assert(Succ < Comp && "condensation edge against Tarjan numbering");
      CompLevel[Succ] = std::max(CompLevel[Succ], CompLevel[Comp] + 1);
    }

  WaveLevel.assign(numVars(), 0);
  std::vector<VarId> Order;
  Order.reserve(numVars());
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (!Forwarding.isRepresentative(Var))
      continue;
    WaveLevel[Var] = CompLevel[SCCs.ComponentOf[Var]];
    Order.push_back(Var);
  }
  // Order indices are unique (Random packs the VarId into the low bits),
  // so the position assignment is a deterministic total order.
  std::sort(Order.begin(), Order.end(), [&](VarId A, VarId B) {
    if (WaveLevel[A] != WaveLevel[B])
      return WaveLevel[A] < WaveLevel[B];
    return Vars[A].Order < Vars[B].Order;
  });
  WaveIndex.assign(numVars(), UINT32_MAX);
  for (size_t I = 0; I != Order.size(); ++I)
    WaveIndex[Order[I]] = static_cast<uint32_t>(I);
  WaveNumPositions = Order.size();

  // SoA edge rows: successor entries laid out contiguously in sweep
  // order with variable targets pre-resolved — the sweep then walks the
  // pool front to back instead of chasing per-node vectors and forwarding
  // chains. Entry order within a row matches the adjacency list, so
  // deliveries (and counters) are identical to the non-SoA path.
  WaveRowStart = nullptr;
  WaveEdges = nullptr;
  if (Options.WaveSoA) {
    WaveArena.reset();
    WaveRowStart = WaveArena.allocateArray<uint32_t>(Order.size() + 1);
    size_t Total = 0;
    for (size_t I = 0; I != Order.size(); ++I) {
      WaveRowStart[I] = static_cast<uint32_t>(Total);
      Total += Vars[Order[I]].Succs.size();
    }
    WaveRowStart[Order.size()] = static_cast<uint32_t>(Total);
    WaveEdges = WaveArena.allocateArray<uint32_t>(Total);
    size_t Out = 0;
    for (VarId Var : Order)
      for (uint32_t Entry : Vars[Var].Succs)
        WaveEdges[Out++] = isTermRef(Entry)
                               ? Entry
                               : varRef(Forwarding.find(payloadOf(Entry)));
  }
  WaveOrderValid = true;
  if (Timed) {
    waveOrderHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("solver.wave_order", StartUs);
  }
}

void ConstraintSolver::abortSolve(SolverStats::AbortReason Reason) {
  if (Stats.Aborted)
    return;
  Stats.Aborted = true;
  Stats.Abort = Reason;
  Worklist.clear();
  RootQueue.clear();
  PendingWave.clear();
  PreRoots.clear();
}

void ConstraintSolver::beginBatchBudgets() {
  BatchTicks = 0;
  BatchStartWork = Stats.Work;
  BatchDeadlineNs = 0;
  if (Options.DeadlineMs) {
    auto Now = std::chrono::steady_clock::now().time_since_epoch();
    BatchDeadlineNs =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Now)
                .count()) +
        Options.DeadlineMs * 1000000ULL;
  }
}

void ConstraintSolver::checkBatchBudgets() {
  if (Stats.Aborted)
    return;
  ++BatchTicks;

  if (FailPoint::hit("solver.step") != FailPoint::Mode::Off ||
      FailPoint::hit("solver.budget") != FailPoint::Mode::Off)
    return abortSolve(SolverStats::AbortReason::Injected);

  // The per-batch edge budget is a plain counter delta: check every item.
  if (Options.MaxEdgeBudget &&
      Stats.Work - BatchStartWork > Options.MaxEdgeBudget)
    return abortSolve(SolverStats::AbortReason::EdgeBudget);

  // The clock costs a vDSO call, /proc a real syscall: throttle both so
  // the closure loop stays hot. 64 items bounds the deadline overshoot
  // far below the acceptance criterion of 2x the deadline.
  if (Options.DeadlineMs && (BatchTicks & 63) == 0) {
    auto Now = std::chrono::steady_clock::now().time_since_epoch();
    uint64_t NowNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count());
    if (NowNs > BatchDeadlineNs)
      return abortSolve(SolverStats::AbortReason::Deadline);
  }

  if (Options.MaxMemBytes && (BatchTicks & 4095) == 0) {
    uint64_t RSS = currentRSSBytes();
    if (RSS && RSS > Options.MaxMemBytes)
      return abortSolve(SolverStats::AbortReason::MemBudget);
  }
}

// Applies the resolution rules R (Figure 1) to Lhs <= Rhs until atomic
// constraints are reached, which become graph edges.
void ConstraintSolver::resolve(ExprId Lhs, ExprId Rhs, bool Derived) {
  if (Stats.Aborted)
    return;
  if (Lhs == Rhs)
    return; // Reflexive constraints are trivially satisfied.

  ExprKind LhsKind = Terms.kind(Lhs);
  ExprKind RhsKind = Terms.kind(Rhs);

  if (LhsKind == ExprKind::Zero || RhsKind == ExprKind::One)
    return; // 0 <= R and L <= 1 always hold.

  switch (LhsKind) {
  case ExprKind::Zero:
    poce_unreachable("handled above");
  case ExprKind::Var:
    if (RhsKind == ExprKind::Var)
      insertVarVar(Terms.varOf(Lhs), Terms.varOf(Rhs), Derived);
    else // Cons or Zero sink.
      insertVarSink(Terms.varOf(Lhs), Rhs, Derived);
    return;
  case ExprKind::One:
    if (RhsKind == ExprKind::Var)
      insertSourceVar(Lhs, Terms.varOf(Rhs), Derived);
    else // 1 <= c(...) and 1 <= 0 are unsatisfiable.
      handleMismatch(Lhs, Rhs);
    return;
  case ExprKind::Cons:
    if (RhsKind == ExprKind::Var) {
      insertSourceVar(Lhs, Terms.varOf(Rhs), Derived);
      return;
    }
    if (RhsKind == ExprKind::Zero || Terms.consOf(Lhs) != Terms.consOf(Rhs)) {
      handleMismatch(Lhs, Rhs);
      return;
    }
    // c(L1..Ln) <= c(R1..Rn): decompose by variance.
    {
      const ConstructorSignature &Sig =
          Terms.constructors().signature(Terms.consOf(Lhs));
      const ExprId *LhsArgs = Terms.argsOf(Lhs);
      const ExprId *RhsArgs = Terms.argsOf(Rhs);
      for (unsigned I = 0; I != Sig.arity(); ++I) {
        if (Sig.ArgVariance[I] == Variance::Covariant)
          resolve(LhsArgs[I], RhsArgs[I], Derived);
        else
          resolve(RhsArgs[I], LhsArgs[I], Derived);
      }
    }
    return;
  }
  poce_unreachable("invalid expression kind");
}

void ConstraintSolver::handleMismatch(ExprId Lhs, ExprId Rhs) {
  ++Stats.Mismatches;
  if (Options.Mismatch == MismatchPolicy::Collect)
    Inconsistencies.push_back(exprStr(Lhs) + " <= " + exprStr(Rhs));
}

//===----------------------------------------------------------------------===//
// Atomic edge insertion
//===----------------------------------------------------------------------===//

void ConstraintSolver::countWork() {
  ++Stats.Work;
  if (Options.MaxWork && Stats.Work > Options.MaxWork)
    abortSolve(SolverStats::AbortReason::MaxWork);
}

void ConstraintSolver::countWorkBatch(uint64_t N) {
  if (!N)
    return;
  Stats.Work += N;
  if (Options.MaxWork && Stats.Work > Options.MaxWork)
    abortSolve(SolverStats::AbortReason::MaxWork);
}

ExprId ConstraintSolver::exprOfRef(uint32_t Ref) {
  return isTermRef(Ref) ? payloadOf(Ref) : Terms.var(payloadOf(Ref));
}

bool ConstraintSolver::insertPred(VarId Owner, uint32_t Entry, bool Derived) {
  VarNode &Node = Vars[Owner];
  bool Inserted = isTermRef(Entry)
                      ? Node.PredTerms.testAndSet(payloadOf(Entry))
                      : Node.PredVarSet.insert(Entry);
  if (!Inserted) {
    ++Stats.RedundantAdds;
    return false;
  }
  Node.Preds.push_back(Entry);
  if (!isTermRef(Entry))
    invalidateWaveOrder();
  else
    bumpEpoch(Owner); // A new source changes Owner's (standard-form) LS.
  if (!Derived)
    ++Stats.InitialEdges;
  // Closure rule at Owner: the new predecessor pairs with every successor.
  ExprId Lhs = exprOfRef(Entry);
  for (uint32_t Succ : Node.Succs)
    enqueue(Lhs, exprOfRef(Succ), /*Derived=*/true);
  return true;
}

bool ConstraintSolver::insertSucc(VarId Owner, uint32_t Entry, bool Derived) {
  VarNode &Node = Vars[Owner];
  bool Inserted = isTermRef(Entry)
                      ? Node.SuccTerms.testAndSet(payloadOf(Entry))
                      : Node.SuccVarSet.insert(Entry);
  if (!Inserted) {
    ++Stats.RedundantAdds;
    return false;
  }
  Node.Succs.push_back(Entry);
  // Every successor insertion invalidates the wave cache: variable
  // targets change the topological order, and even sink targets extend a
  // CSR row the next sweep must not miss.
  invalidateWaveOrder();
  if (!Derived)
    ++Stats.InitialEdges;

  if (sfDiffProp()) {
    // Standard-form pred lists hold source terms only. Pair the new
    // successor with the sources that were already flushed; the pending
    // SrcDelta bits reach it through the scheduled flush, so each source
    // arrival meets each edge exactly once.
    const SparseBitVector *OldSrc = &Node.PredTerms;
    if (!Node.SrcDelta.empty()) {
      OldSrcScratch.assignDifference(Node.PredTerms, Node.SrcDelta);
      OldSrc = &OldSrcScratch;
    }
    if (isTermRef(Entry)) {
      ExprId Sink = payloadOf(Entry);
      OldSrc->forEach(
          [&](uint32_t Src) { enqueue(Src, Sink, /*Derived=*/true); });
    } else {
      deliverSources(Forwarding.find(payloadOf(Entry)), *OldSrc);
    }
    return true;
  }

  // Closure rule at Owner: every predecessor pairs with the new successor.
  ExprId Rhs = exprOfRef(Entry);
  for (uint32_t Pred : Node.Preds)
    enqueue(exprOfRef(Pred), Rhs, /*Derived=*/true);
  return true;
}

void ConstraintSolver::insertVarVar(VarId Lhs, VarId Rhs, bool Derived) {
  Lhs = Forwarding.find(Lhs);
  Rhs = Forwarding.find(Rhs);
  countWork();
  if (Stats.Aborted)
    return;
  if (Lhs == Rhs) {
    ++Stats.SelfEdges;
    return;
  }
  if (Options.RecordVarVar)
    recordVarVar(Lhs, Rhs, Derived);

  if (Options.Elim == CycleElim::Online && detectAndCollapse(Lhs, Rhs))
    return; // The cycle was collapsed; the constraint holds by equality.

  bool AsSucc = Options.Form == GraphForm::Standard ||
                orderOf(Lhs) > orderOf(Rhs);
  if (AsSucc)
    insertSucc(Lhs, varRef(Rhs), Derived);
  else
    insertPred(Rhs, varRef(Lhs), Derived);
}

void ConstraintSolver::insertSourceVar(ExprId Source, VarId Var,
                                       bool Derived) {
  Var = Forwarding.find(Var);
  countWork();
  if (Stats.Aborted)
    return;
  if (!sfDiffProp()) {
    if (insertPred(Var, termRef(Source), Derived))
      if (SeenSources.testAndSet(Source))
        ++Stats.DistinctSources;
    return;
  }
  // Difference propagation: record the arrival in the source bitmap and
  // the pending delta; successor pairing happens when the delta flushes.
  VarNode &Node = Vars[Var];
  if (!Node.PredTerms.testAndSet(Source)) {
    ++Stats.RedundantAdds;
    return;
  }
  Node.Preds.push_back(termRef(Source));
  bumpEpoch(Var);
  if (!Derived)
    ++Stats.InitialEdges;
  if (SeenSources.testAndSet(Source))
    ++Stats.DistinctSources;
  if (Node.SrcDelta.empty())
    scheduleFlush(Var);
  Node.SrcDelta.set(Source);
}

void ConstraintSolver::insertVarSink(VarId Var, ExprId Sink, bool Derived) {
  Var = Forwarding.find(Var);
  countWork();
  if (Stats.Aborted)
    return;
  if (insertSucc(Var, termRef(Sink), Derived))
    if (SeenSinks.testAndSet(Sink))
      ++Stats.DistinctSinks;
}

void ConstraintSolver::deliverSources(VarId Target,
                                      const SparseBitVector &Batch) {
  if (Batch.empty())
    return;
  // Work accounting matches element-wise insertion: one attempt per
  // source in the batch, redundant when the bit was already present.
  countWorkBatch(Batch.count());
  ++Stats.DeltaPropagations;
  VarNode &Node = Vars[Target];
  bool WasIdle = Node.SrcDelta.empty();
  auto OnNewSource = [&](uint32_t Src) {
    Node.Preds.push_back(termRef(Src));
    Node.SrcDelta.set(Src);
    if (SeenSources.testAndSet(Src))
      ++Stats.DistinctSources;
  };
  // A small batch landing in a large accumulated set is cheaper to probe
  // bit by bit (the cursor makes clustered probes O(1)) than to merge word
  // by word across all of the target's elements. Both paths visit new bits
  // in ascending order, so accounting and Preds order are identical.
  size_t Added = 0;
  if (Batch.count() * 8 < Node.PredTerms.numWords()) {
    Batch.forEach([&](uint32_t Src) {
      if (Node.PredTerms.testAndSet(Src)) {
        ++Added;
        OnNewSource(Src);
      }
    });
  } else {
    Added = Node.PredTerms.unionWithVisitor(Batch, OnNewSource);
  }
  Stats.RedundantAdds += Batch.count() - Added;
  if (!Added) {
    ++Stats.PropagationsPruned;
    return;
  }
  bumpEpoch(Target);
  if (WasIdle)
    scheduleFlush(Target);
}

void ConstraintSolver::flushDelta(VarId Var) {
  if (Stats.Aborted)
    return;
  VarNode &Node = Vars[Var];
  if (Node.SrcDelta.empty())
    return; // Collapsed away, or already covered by an earlier flush.
  DeltaScratch.clear();
  std::swap(DeltaScratch, Node.SrcDelta);

  // Inside a sweep the CSR rows are fresh — the order (and layout) was
  // rebuilt after the last structural change and flushes never add
  // successor edges — so the row mirrors Node.Succs entry for entry with
  // targets already resolved.
  if (InWavePass && WaveEdges && WaveIndex[Var] != UINT32_MAX) {
    uint32_t Pos = WaveIndex[Var];
    assert(WaveRowStart[Pos + 1] - WaveRowStart[Pos] == Node.Succs.size() &&
           "stale CSR row used during a wave sweep");
    for (uint32_t I = WaveRowStart[Pos], E = WaveRowStart[Pos + 1];
         I != E && !Stats.Aborted; ++I) {
      uint32_t Entry = WaveEdges[I];
      if (isTermRef(Entry)) {
        ExprId Sink = payloadOf(Entry);
        DeltaScratch.forEach(
            [&](uint32_t Src) { enqueue(Src, Sink, /*Derived=*/true); });
      } else {
        deliverSources(payloadOf(Entry), DeltaScratch);
      }
    }
    return;
  }

  for (size_t I = 0; I != Node.Succs.size() && !Stats.Aborted; ++I) {
    uint32_t Entry = Node.Succs[I];
    if (isTermRef(Entry)) {
      // Sink successors resolve element-wise (constructor decomposition
      // may derive further constraints per source).
      ExprId Sink = payloadOf(Entry);
      DeltaScratch.forEach(
          [&](uint32_t Src) { enqueue(Src, Sink, /*Derived=*/true); });
    } else {
      deliverSources(Forwarding.find(payloadOf(Entry)), DeltaScratch);
    }
  }
}

void ConstraintSolver::recordVarVar(VarId Lhs, VarId Rhs, bool Derived) {
  uint32_t LhsIndex = Vars[Lhs].CreationIndex;
  uint32_t RhsIndex = Vars[Rhs].CreationIndex;
  uint64_t Key = (static_cast<uint64_t>(LhsIndex) << 32) | RhsIndex;
  if (RecordedSet.insert(Key))
    RecordedVarVar.push_back({LhsIndex, RhsIndex});
  if (!Derived && RecordedInitialSet.insert(Key))
    RecordedInitialVarVar.push_back({LhsIndex, RhsIndex});
}

//===----------------------------------------------------------------------===//
// Partial online cycle detection (Figure 3)
//===----------------------------------------------------------------------===//

bool ConstraintSolver::detectAndCollapse(VarId Lhs, VarId Rhs) {
  // The new constraint is Lhs <= Rhs; a cycle exists iff a chain
  // Rhs <= ... <= Lhs is already present.
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  std::vector<VarId> Path;
  bool Found = false;
  if (Options.Form == GraphForm::Inductive) {
    if (orderOf(Lhs) > orderOf(Rhs)) {
      // New successor edge at Lhs: search predecessor chains from Lhs for
      // Rhs (each hop P in pred(V) means P <= V, so reaching Rhs proves
      // Rhs <= ... <= Lhs).
      Found = searchChain(Lhs, Rhs, ChainKind::Pred, Path);
    } else {
      // New predecessor edge at Rhs: search successor chains from Rhs for
      // Lhs (each hop S in succ(V) means V <= S).
      Found = searchChain(Rhs, Lhs, ChainKind::Succ, Path);
    }
  } else {
    // Standard form: all variable-variable edges are successors; search
    // from Rhs for Lhs, restricted to monotone chains to bound the cost.
    switch (Options.SFChains) {
    case SFChainMode::Decreasing:
      Found = searchChain(Rhs, Lhs, ChainKind::SuccDecreasing, Path);
      break;
    case SFChainMode::Increasing:
      Found = searchChain(Rhs, Lhs, ChainKind::SuccIncreasing, Path);
      break;
    case SFChainMode::Both:
      Found = searchChain(Rhs, Lhs, ChainKind::SuccDecreasing, Path) ||
              searchChain(Rhs, Lhs, ChainKind::SuccIncreasing, Path);
      break;
    }
  }
  if (!Found) {
    if (Timed)
      cycleSearchHistogram().record(trace::nowMicros() - StartUs);
    return false;
  }
  collapseCycle(Path);
  if (Timed) {
    cycleSearchHistogram().record(trace::nowMicros() - StartUs);
    // Successful searches are rare enough to trace individually; the
    // misses would swamp the viewer and live in the histogram instead.
    trace::complete("solver.cycle_collapse", StartUs);
  }
  return true;
}

bool ConstraintSolver::searchChain(VarId Start, VarId Target, ChainKind Kind,
                                   std::vector<VarId> &Path) {
  ++Stats.CycleSearches;
  ++CurrentEpoch;
  bool UsePreds = Kind == ChainKind::Pred;

  struct Frame {
    VarId Node;
    uint32_t NextIndex;
  };
  std::vector<Frame> Frames;
  Path.clear();
  Path.push_back(Start);
  Frames.push_back({Start, 0});
  Vars[Start].VisitEpoch = CurrentEpoch;

  while (!Frames.empty()) {
    Frame &Top = Frames.back();
    const std::vector<uint32_t> &List =
        UsePreds ? Vars[Top.Node].Preds : Vars[Top.Node].Succs;
    if (Top.NextIndex >= List.size()) {
      Frames.pop_back();
      Path.pop_back();
      continue;
    }
    uint32_t Entry = List[Top.NextIndex++];
    if (isTermRef(Entry))
      continue;
    VarId Next = Forwarding.find(payloadOf(Entry));
    if (Next == Top.Node)
      continue; // Stale self reference after a collapse.
    ++Stats.CycleSearchSteps;

    // Only monotone chains are explored; for inductive form the stored
    // representation already guarantees decreasing order.
    bool OrderOk = false;
    switch (Kind) {
    case ChainKind::Pred:
    case ChainKind::Succ:
    case ChainKind::SuccDecreasing:
      OrderOk = orderOf(Next) < orderOf(Top.Node);
      break;
    case ChainKind::SuccIncreasing:
      OrderOk = orderOf(Next) > orderOf(Top.Node);
      break;
    }
    if ((Kind == ChainKind::Pred || Kind == ChainKind::Succ) && !OrderOk)
      poce_unreachable("inductive form stores only decreasing chains");
    if (!OrderOk)
      continue;

    if (Next == Target) {
      Path.push_back(Next);
      return true;
    }
    if (Vars[Next].VisitEpoch == CurrentEpoch)
      continue;
    Vars[Next].VisitEpoch = CurrentEpoch;
    Path.push_back(Next);
    Frames.push_back({Next, 0});
  }
  Path.clear();
  return false;
}

void ConstraintSolver::collapseCycle(const std::vector<VarId> &Cycle) {
  assert(Cycle.size() >= 2 && "collapse of a trivial cycle!");
  VarId Witness = Cycle[0];
  for (VarId Var : Cycle)
    if (orderOf(Var) < orderOf(Witness))
      Witness = Var;

  POCE_DEBUG({
    std::string Msg = "collapse onto " + Vars[Witness].Name + ":";
    for (VarId Var : Cycle)
      Msg += " " + Vars[Var].Name;
    std::fprintf(stderr, "[setcon] %s\n", Msg.c_str());
  });

  ++Stats.CyclesCollapsed;
  invalidateWaveOrder();
  // Unite first so representative lookups during re-adding see the final
  // classes.
  for (VarId Var : Cycle) {
    if (Var == Witness)
      continue;
    bool United = Forwarding.unite(Var, Witness);
    assert(United && "cycle contained duplicate representatives!");
    (void)United;
    ++Stats.VarsEliminated;
  }
  // Move the collapsed variables' constraints onto the witness. Clearing
  // SrcDelta turns any flush still queued for the dead variable into a
  // no-op; its pending sources re-arrive at the witness through the
  // re-enqueued constraints below.
  ExprId WitnessExpr = Terms.var(Witness);
  for (VarId Var : Cycle) {
    if (Var == Witness)
      continue;
    VarNode &Node = Vars[Var];
    std::vector<uint32_t> Preds = std::move(Node.Preds);
    std::vector<uint32_t> Succs = std::move(Node.Succs);
    Node.Preds.clear();
    Node.Succs.clear();
    Node.PredVarSet = DenseU64Set();
    Node.SuccVarSet = DenseU64Set();
    Node.PredTerms = SparseBitVector();
    Node.SuccTerms = SparseBitVector();
    Node.SrcDelta = SparseBitVector();
    for (uint32_t Pred : Preds)
      enqueue(exprOfRef(Pred), WitnessExpr, /*Derived=*/true);
    for (uint32_t Succ : Succs)
      enqueue(WitnessExpr, exprOfRef(Succ), /*Derived=*/true);
  }
}

void ConstraintSolver::runPeriodicPass() {
  ++Stats.PeriodicPasses;
  Digraph G = varVarDigraph();
  SCCResult SCCs = computeSCCs(G);
  for (const auto &Component : SCCs.Components)
    if (Component.size() >= 2)
      collapseCycle(Component);
}

//===----------------------------------------------------------------------===//
// Constraint retraction
//===----------------------------------------------------------------------===//

void ConstraintSolver::collectExprVars(ExprId Expr,
                                       std::vector<VarId> &Out) const {
  switch (Terms.kind(Expr)) {
  case ExprKind::Var:
    Out.push_back(Terms.varOf(Expr));
    return;
  case ExprKind::Cons: {
    const ExprId *Args = Terms.argsOf(Expr);
    for (unsigned I = 0, E = Terms.numArgs(Expr); I != E; ++I)
      collectExprVars(Args[I], Out);
    return;
  }
  case ExprKind::Zero:
  case ExprKind::One:
    return;
  }
}

void ConstraintSolver::computeRetractionCone(
    ExprId RootL, ExprId RootR, std::vector<uint8_t> &ConeVar,
    std::vector<uint8_t> &MentionsCone) {
  // Representative-level flags during the fixpoint; class wholeness is
  // applied when the raw per-VarId flags are derived at the end.
  std::vector<uint8_t> ConeRep(numVars(), 0);
  std::vector<VarId> Frontier;
  auto AddVar = [&](VarId Var) {
    VarId Rep = Forwarding.find(Var);
    if (!ConeRep[Rep]) {
      ConeRep[Rep] = 1;
      Frontier.push_back(Rep);
    }
  };
  std::vector<VarId> Seeds;
  collectExprVars(RootL, Seeds);
  collectExprVars(RootR, Seeds);
  for (VarId Var : Seeds)
    AddVar(Var);

  // (b) forward flow: sources the retracted constraint injected can have
  // flowed to anything downstream along variable-variable edges, so the
  // cone is forward-closed over the current variable graph. Conversely,
  // a variable *not* downstream of any cone variable cannot hold a
  // source that depended on the retracted root.
  Digraph G = varVarDigraph();

  MentionsCone.assign(Terms.size(), 0);
  std::vector<VarId> TermVars;
  for (;;) {
    while (!Frontier.empty()) {
      VarId Rep = Frontier.back();
      Frontier.pop_back();
      for (VarId Succ : G.successors(Rep))
        AddVar(Succ);
    }
    // Terms mentioning a cone variable, in one ascending pass (arguments
    // are interned before any term that uses them, so smaller ids are
    // final by the time a constructed term asks).
    for (ExprId Id = 0; Id != Terms.size(); ++Id) {
      switch (Terms.kind(Id)) {
      case ExprKind::Var:
        MentionsCone[Id] = ConeRep[Forwarding.find(Terms.varOf(Id))];
        break;
      case ExprKind::Cons: {
        uint8_t Mentions = 0;
        const ExprId *Args = Terms.argsOf(Id);
        for (unsigned I = 0, E = Terms.numArgs(Id); I != E && !Mentions;
             ++I)
          Mentions = MentionsCone[Args[I]];
        MentionsCone[Id] = Mentions;
        break;
      }
      default:
        MentionsCone[Id] = 0;
        break;
      }
    }
    // (c) variables occurring in terms a cone variable holds: rebuilding
    // the holder re-fires the decomposition that derived their edges, so
    // their state must be rebuilt in the same sweep. (d) variables
    // holding terms that mention a cone variable: their source x sink
    // pairings are what re-derive the cone's decomposition edges, and
    // pairings only fire on insertion — an untouched holder would never
    // re-deliver.
    bool Grew = false;
    for (VarId Var = 0; Var != numVars(); ++Var) {
      if (!Forwarding.isRepresentative(Var))
        continue;
      const VarNode &Node = Vars[Var];
      // SrcDelta is a subset of PredTerms, so scanning the two term
      // bitmaps covers everything the node holds.
      auto Scan = [&](const SparseBitVector &Bits) {
        Bits.forEach([&](uint32_t Term) {
          if (ConeRep[Forwarding.find(Var)]) {
            TermVars.clear();
            collectExprVars(Term, TermVars);
            for (VarId Mentioned : TermVars)
              if (!ConeRep[Forwarding.find(Mentioned)]) {
                AddVar(Mentioned);
                Grew = true;
              }
          } else if (MentionsCone[Term]) {
            AddVar(Var);
            Grew = true;
          }
        });
      };
      Scan(Node.PredTerms);
      Scan(Node.SuccTerms);
    }
    if (!Grew && Frontier.empty())
      break;
  }

  ConeVar.assign(numVars(), 0);
  for (VarId Var = 0; Var != numVars(); ++Var)
    ConeVar[Var] = ConeRep[Forwarding.find(Var)];
}

bool ConstraintSolver::classCycleSurvives(const std::vector<VarId> &Members) {
  std::unordered_map<VarId, uint32_t> Local;
  Local.reserve(Members.size());
  for (uint32_t I = 0; I != Members.size(); ++I)
    Local.emplace(Members[I], I);
  // Internal edges among the members from surviving *direct* var <= var
  // base constraints (derived edges are not provenance: they may have
  // depended on the retracted root).
  std::vector<std::vector<uint32_t>> Fwd(Members.size()), Rev(Members.size());
  bool AnyEdge = false;
  for (const BaseRoot &Root : BaseRoots) {
    if (Terms.kind(Root.L) != ExprKind::Var ||
        Terms.kind(Root.R) != ExprKind::Var)
      continue;
    auto LIt = Local.find(Terms.varOf(Root.L));
    auto RIt = Local.find(Terms.varOf(Root.R));
    if (LIt == Local.end() || RIt == Local.end())
      continue;
    Fwd[LIt->second].push_back(RIt->second);
    Rev[RIt->second].push_back(LIt->second);
    AnyEdge = true;
  }
  if (!AnyEdge)
    return false;
  // One SCC covering every member iff all are forward- and backward-
  // reachable from member 0.
  auto CoversAll = [&](const std::vector<std::vector<uint32_t>> &Adj) {
    std::vector<uint8_t> Seen(Members.size(), 0);
    std::vector<uint32_t> Stack = {0};
    Seen[0] = 1;
    size_t Count = 1;
    while (!Stack.empty()) {
      uint32_t Node = Stack.back();
      Stack.pop_back();
      for (uint32_t Next : Adj[Node])
        if (!Seen[Next]) {
          Seen[Next] = 1;
          ++Count;
          Stack.push_back(Next);
        }
    }
    return Count == Members.size();
  };
  return CoversAll(Fwd) && CoversAll(Rev);
}

bool ConstraintSolver::hasRootTag(const std::string &Tag) const {
  for (const BaseRoot &Root : BaseRoots)
    if (Root.Tag == Tag)
      return true;
  return false;
}

bool ConstraintSolver::retract(const std::string &Tag) {
  ensureClosed();
  if (Stats.Aborted)
    return false;
  size_t RootIdx = BaseRoots.size();
  for (size_t I = 0; I != BaseRoots.size(); ++I)
    if (BaseRoots[I].Tag == Tag) {
      RootIdx = I;
      break;
    }
  if (RootIdx == BaseRoots.size())
    return false;
  const ExprId RootL = BaseRoots[RootIdx].L;
  const ExprId RootR = BaseRoots[RootIdx].R;
  // erase keeps the survivors in input order: the replay below and every
  // later retraction replay the same sequence a fresh solve would see.
  BaseRoots.erase(BaseRoots.begin() + RootIdx);
  ++Stats.Retractions;
  invalidateSolutions();

  std::vector<uint8_t> ConeVar, MentionsCone;
  computeRetractionCone(RootL, RootR, ConeVar, MentionsCone);

  // Cone classes with their members, captured before any split changes
  // the forwarding structure.
  std::vector<std::vector<VarId>> ClassMembers(numVars());
  for (VarId Var = 0; Var != numVars(); ++Var)
    if (ConeVar[Var])
      ClassMembers[Forwarding.find(Var)].push_back(Var);

  // Scrub: drop the untouched remainder's edges into the cone; the
  // replay re-derives exactly the surviving ones (insertion pairs a new
  // entry with every existing opposite-side entry, so re-derivation is
  // order-independent). Raw-id checks suffice because cone membership is
  // class-whole. Term entries stay: an outside variable's sources never
  // depended on the retracted root — rule (b) would have pulled it in.
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (ConeVar[Var] || !Forwarding.isRepresentative(Var))
      continue;
    VarNode &Node = Vars[Var];
    auto Scrub = [&](std::vector<uint32_t> &List, DenseU64Set &VarSet) {
      std::vector<uint32_t> Fresh;
      Fresh.reserve(List.size());
      for (uint32_t Entry : List) {
        if (!isTermRef(Entry) && ConeVar[payloadOf(Entry)])
          continue;
        Fresh.push_back(Entry);
      }
      List = std::move(Fresh);
      DenseU64Set FreshSet;
      for (uint32_t Entry : List)
        if (!isTermRef(Entry))
          FreshSet.insert(Entry);
      VarSet = std::move(FreshSet);
    };
    Scrub(Node.Preds, Node.PredVarSet);
    Scrub(Node.Succs, Node.SuccVarSet);
  }

  // Split check: a multi-member class stays collapsed only when the
  // surviving direct constraints still strongly connect every member.
  // Otherwise (including every offline HVN-merged class, which has no
  // online witness cycle) the class dissolves into singletons and the
  // replay lets online detection re-collapse whatever cycles remain —
  // splitting is always sound because the whole class is rebuilt.
  for (VarId Rep = 0; Rep != numVars(); ++Rep) {
    const std::vector<VarId> &Members = ClassMembers[Rep];
    if (Members.size() < 2)
      continue;
    if (!classCycleSurvives(Members)) {
      for (VarId Member : Members)
        Forwarding.reset(Member);
      ++Stats.CollapsesSplit;
    }
  }

  // Reset every cone variable to a fresh node (the collapseCycle idiom)
  // and mark its solution changed; the replay rebuilds it from surviving
  // provenance.
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (!ConeVar[Var])
      continue;
    VarNode &Node = Vars[Var];
    Node.Preds.clear();
    Node.Succs.clear();
    Node.PredVarSet = DenseU64Set();
    Node.SuccVarSet = DenseU64Set();
    Node.PredTerms = SparseBitVector();
    Node.SuccTerms = SparseBitVector();
    Node.SrcDelta = SparseBitVector();
    bumpEpoch(Var);
    ++Stats.ConeVarsRecomputed;
  }
  invalidateWaveOrder();

  // Replay the surviving roots that mention the cone, through the same
  // schedule addConstraint uses: per-root worklist drains keep the
  // per-add budget scope, wave mode defers to the root queue and the
  // closing drain below.
  for (const BaseRoot &Root : BaseRoots) {
    if (Stats.Aborted)
      break;
    if (MentionsCone[Root.L] || MentionsCone[Root.R])
      processRoot(Root.L, Root.R);
  }
  ensureClosed();
  return true;
}

//===----------------------------------------------------------------------===//
// Least solution
//===----------------------------------------------------------------------===//

void ConstraintSolver::finalize() {
  if (Finalized)
    return;
  ensureClosed();
  Finalized = true;
  const bool Timed = phaseTimingOn();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  LSView.assign(numVars(), {});
  LSViewBuilt.assign(numVars(), 0);
  unsigned Threads = ThreadPool::resolveThreads(Options.Threads);
  if (Threads <= 1) {
    if (Options.Form == GraphForm::Inductive)
      computeLeastSolutionIF();
    else
      LSBits.clear(); // SF: the closed graph holds LS in PredTerms already.
  } else {
    ThreadPool Pool(Threads);
    if (Options.Form == GraphForm::Inductive)
      computeLeastSolutionIFParallel(Pool);
    else
      LSBits.clear();
    materializeAllSolutions(Pool);
  }
  // Inductive form settles solutions only here, so this is the one place
  // the per-variable mutation epochs can see downstream effects: diff the
  // fresh LSBits against the previous settled state and bump exactly the
  // changed variables (a variable collapsed away since the last finalize
  // diffs nonempty -> empty, which is harmless — its representative
  // changed, so no cached view keys on it anymore).
  if (Options.Form == GraphForm::Inductive) {
    const SparseBitVector Empty;
    for (VarId Var = 0; Var != numVars(); ++Var) {
      const SparseBitVector &Prev =
          Var < PrevLSBits.size() ? PrevLSBits[Var] : Empty;
      if (!(LSBits[Var] == Prev))
        bumpEpoch(Var);
    }
  }
  PrevLSBits.clear();
  if (Timed) {
    leastSolutionHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("solver.least_solution", StartUs);
  }
}

const std::vector<ExprId> &ConstraintSolver::leastSolution(VarId Var) {
  finalize();
  return materializeLS(Forwarding.find(Var));
}

const SparseBitVector &ConstraintSolver::leastSolutionBits(VarId Var) {
  finalize();
  VarId Rep = Forwarding.find(Var);
  return Options.Form == GraphForm::Standard ? Vars[Rep].PredTerms
                                             : LSBits[Rep];
}

const SparseBitVector &
ConstraintSolver::leastSolutionBitsConst(VarId Var) const {
  assert(readShareable() &&
         "const solution access on an unsettled solver; call "
         "materializeAllViews() first");
  VarId Rep = Forwarding.findConst(Var);
  return Options.Form == GraphForm::Standard ? Vars[Rep].PredTerms
                                             : LSBits[Rep];
}

const std::vector<ExprId> &
ConstraintSolver::leastSolutionViewConst(VarId Var) const {
  assert(readShareable() &&
         "const solution access on an unsettled solver; call "
         "materializeAllViews() first");
  VarId Rep = Forwarding.findConst(Var);
  assert(LSViewBuilt[Rep] &&
         "view not materialized; materializeAllViews() builds every live "
         "representative's view");
  return LSView[Rep];
}

bool ConstraintSolver::aliasConst(VarId X, VarId Y) const {
  VarId RepX = Forwarding.findConst(X);
  VarId RepY = Forwarding.findConst(Y);
  if (RepX == RepY)
    return true;
  return leastSolutionBitsConst(RepX).intersects(leastSolutionBitsConst(RepY));
}

const std::vector<ExprId> &ConstraintSolver::materializeLS(VarId Rep) {
  if (!LSViewBuilt[Rep]) {
    const SparseBitVector &Bits = Options.Form == GraphForm::Standard
                                      ? Vars[Rep].PredTerms
                                      : LSBits[Rep];
    LSView[Rep] = Bits.toVector<ExprId>();
    LSViewBuilt[Rep] = 1;
  }
  return LSView[Rep];
}

// In inductive form every variable predecessor has a smaller order index,
// so processing representatives in increasing order makes equation (1) of
// the paper a single pass:
//   LS(Y) = {c | c in pred(Y)} ∪ ⋃_{X in pred(Y)} LS(X).
// Each union is a word-level bitmap merge, and predecessor entries that
// resolve to the same representative (common after collapses) union once
// per variable thanks to the epoch mark — the accumulation stays linear in
// bitmap words where the vector version re-sorted every duplicate.
void ConstraintSolver::computeLeastSolutionIF() {
  LSBits.assign(numVars(), SparseBitVector());
  std::vector<VarId> Live;
  for (VarId Var = 0; Var != numVars(); ++Var)
    if (Forwarding.isRepresentative(Var))
      Live.push_back(Var);
  std::sort(Live.begin(), Live.end(), [&](VarId A, VarId B) {
    return Vars[A].Order < Vars[B].Order;
  });

  for (VarId Var : Live) {
    SparseBitVector &Out = LSBits[Var];
    ++CurrentEpoch;
    for (uint32_t Pred : Vars[Var].Preds) {
      if (isTermRef(Pred)) {
        Out.set(payloadOf(Pred));
        continue;
      }
      VarId PredRep = Forwarding.find(payloadOf(Pred));
      if (PredRep == Var)
        continue; // Stale self reference after a collapse.
      assert(Vars[PredRep].Order < Vars[Var].Order &&
             "inductive form violated: predecessor with larger order");
      if (Vars[PredRep].VisitEpoch == CurrentEpoch)
        continue; // Duplicate entry for the same representative.
      Vars[PredRep].VisitEpoch = CurrentEpoch;
      Out.unionWith(LSBits[PredRep], &Stats.LSUnionWords);
    }
  }
}

// The parallel variant evaluates the same recurrence as a wavefront. The
// collapsed representative graph is acyclic with every predecessor at a
// strictly lower order index, so one ascending sweep assigns each variable
// a level = 1 + max(level of its predecessors): by construction a level's
// variables depend only on strictly earlier levels, making each level an
// embarrassingly parallel batch of word-level unions. Each task writes
// only its own variable's bitmap and reads bitmaps completed before the
// previous level's barrier. Determinism: the set of (variable, distinct
// predecessor representative) unions is schedule-independent, union is
// commutative, and unionWith's word count depends only on the source
// bitmap — so LSBits and LSUnionWords are bit-identical to the sequential
// pass for any thread count.
void ConstraintSolver::computeLeastSolutionIFParallel(ThreadPool &Pool) {
  LSBits.assign(numVars(), SparseBitVector());
  std::vector<VarId> Live;
  for (VarId Var = 0; Var != numVars(); ++Var)
    if (Forwarding.isRepresentative(Var))
      Live.push_back(Var);
  std::sort(Live.begin(), Live.end(), [&](VarId A, VarId B) {
    return Vars[A].Order < Vars[B].Order;
  });

  // Kahn levels in one ascending pass (predecessors precede their users).
  // This sequential sweep also path-compresses every forwarding chain the
  // parallel phase will look up, so the findConst calls below are single
  // hops on immutable data.
  std::vector<uint32_t> Depth(numVars(), 0);
  std::vector<std::vector<VarId>> Levels;
  for (VarId Var : Live) {
    uint32_t Level = 0;
    for (uint32_t Pred : Vars[Var].Preds) {
      if (isTermRef(Pred))
        continue;
      VarId PredRep = Forwarding.find(payloadOf(Pred));
      if (PredRep != Var)
        Level = std::max(Level, Depth[PredRep] + 1);
    }
    Depth[Var] = Level;
    if (Level >= Levels.size())
      Levels.resize(Level + 1);
    Levels[Level].push_back(Var);
  }

  // Per-lane scratch: an epoch array replaces the shared VisitEpoch marks
  // (which two lanes would race on) for deduplicating predecessor entries
  // that resolve to the same representative, plus a SolverStats delta so
  // counting never touches the shared Stats. The deltas are sums, so
  // merging them after the waves is order-independent. Each lane's slot is
  // padded to whole cache lines (CacheAligned): the Epoch counter and the
  // Delta counters are bumped on every variable a lane processes, and
  // unpadded adjacent slots would false-share those lines across lanes.
  struct LaneScratch {
    std::vector<uint32_t> SeenEpoch;
    uint32_t Epoch = 0;
    SolverStats Delta;
  };
  static_assert(cacheAlignedLayoutOk<LaneScratch>,
                "per-lane scratch must occupy whole cache lines");
  std::vector<CacheAligned<LaneScratch>> Scratch(Pool.numLanes());
  for (CacheAligned<LaneScratch> &S : Scratch)
    S.Value.SeenEpoch.assign(numVars(), 0);

  Pool.parallelForLevels(Levels, [&](VarId Var, unsigned Lane) {
    LaneScratch &S = Scratch[Lane].Value;
    ++S.Epoch;
    SparseBitVector &Out = LSBits[Var];
    for (uint32_t Pred : Vars[Var].Preds) {
      if (isTermRef(Pred)) {
        Out.set(payloadOf(Pred));
        continue;
      }
      VarId PredRep = Forwarding.findConst(payloadOf(Pred));
      if (PredRep == Var)
        continue; // Stale self reference after a collapse.
      assert(Vars[PredRep].Order < Vars[Var].Order &&
             "inductive form violated: predecessor with larger order");
      if (S.SeenEpoch[PredRep] == S.Epoch)
        continue; // Duplicate entry for the same representative.
      S.SeenEpoch[PredRep] = S.Epoch;
      Out.unionWith(LSBits[PredRep], &S.Delta.LSUnionWords);
    }
  });

  for (const CacheAligned<LaneScratch> &S : Scratch)
    Stats += S.Value.Delta;
}

void ConstraintSolver::materializeAllViews() {
  finalize();
  unsigned Threads = ThreadPool::resolveThreads(Options.Threads);
  if (Threads <= 1) {
    for (VarId Var = 0; Var != numVars(); ++Var)
      if (Forwarding.isRepresentative(Var))
        (void)materializeLS(Var);
    return;
  }
  ThreadPool Pool(Threads);
  materializeAllSolutions(Pool);
}

void ConstraintSolver::materializeAllSolutions(ThreadPool &Pool) {
  std::vector<VarId> Live;
  for (VarId Var = 0; Var != numVars(); ++Var)
    if (Forwarding.isRepresentative(Var))
      Live.push_back(Var);
  Pool.parallelFor(Live.size(), [&](size_t I, unsigned) {
    VarId Rep = Live[I];
    const SparseBitVector &Bits = Options.Form == GraphForm::Standard
                                      ? Vars[Rep].PredTerms
                                      : LSBits[Rep];
    LSView[Rep] = Bits.toVector<ExprId>();
    LSViewBuilt[Rep] = 1;
  });
}

std::vector<std::vector<ExprId>> ConstraintSolver::referenceLeastSolutions() {
  ensureClosed();
  std::vector<std::vector<ExprId>> Ref(numVars());
  if (Options.Form == GraphForm::Standard) {
    for (VarId Var = 0; Var != numVars(); ++Var) {
      if (!Forwarding.isRepresentative(Var))
        continue;
      std::vector<ExprId> &Out = Ref[Var];
      for (uint32_t Pred : Vars[Var].Preds)
        if (isTermRef(Pred))
          Out.push_back(payloadOf(Pred));
      std::sort(Out.begin(), Out.end());
      Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    }
    return Ref;
  }
  std::vector<VarId> Live;
  for (VarId Var = 0; Var != numVars(); ++Var)
    if (Forwarding.isRepresentative(Var))
      Live.push_back(Var);
  std::sort(Live.begin(), Live.end(), [&](VarId A, VarId B) {
    return Vars[A].Order < Vars[B].Order;
  });
  for (VarId Var : Live) {
    std::vector<ExprId> Acc;
    for (uint32_t Pred : Vars[Var].Preds) {
      if (isTermRef(Pred)) {
        Acc.push_back(payloadOf(Pred));
        continue;
      }
      VarId PredRep = Forwarding.find(payloadOf(Pred));
      if (PredRep == Var)
        continue;
      const std::vector<ExprId> &PredLS = Ref[PredRep];
      Acc.insert(Acc.end(), PredLS.begin(), PredLS.end());
    }
    std::sort(Acc.begin(), Acc.end());
    Acc.erase(std::unique(Acc.begin(), Acc.end()), Acc.end());
    Ref[Var] = std::move(Acc);
  }
  return Ref;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

bool ConstraintSolver::verifyGraphInvariants() {
  ensureClosed();
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (!Forwarding.isRepresentative(Var))
      continue;
    for (uint32_t Pred : Vars[Var].Preds) {
      if (isTermRef(Pred))
        continue;
      // Standard form stores every variable-variable edge on the successor
      // side; a variable predecessor would corrupt the explicit LS.
      if (Options.Form == GraphForm::Standard)
        return false;
      VarId PredRep = Forwarding.find(payloadOf(Pred));
      if (PredRep == Var)
        continue;
      if (Vars[PredRep].Order >= Vars[Var].Order)
        return false;
    }
  }
  return true;
}

uint64_t ConstraintSolver::countFinalEdges() {
  ensureClosed();
  uint64_t Count = 0;
  DenseU64Set Resolved;
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (!Forwarding.isRepresentative(Var))
      continue;
    const VarNode &Node = Vars[Var];
    // Term entries are unique in the adjacency lists by construction, so
    // the bitmap population counts are exact.
    Count += Node.PredTerms.count() + Node.SuccTerms.count();
    Resolved.clear();
    for (uint32_t Pred : Node.Preds) {
      if (isTermRef(Pred))
        continue;
      VarId Rep = Forwarding.find(payloadOf(Pred));
      if (Rep == Var)
        continue;
      if (Resolved.insert(varRef(Rep)))
        ++Count;
    }
    for (uint32_t Succ : Node.Succs) {
      if (isTermRef(Succ))
        continue;
      VarId Rep = Forwarding.find(payloadOf(Succ));
      if (Rep == Var)
        continue;
      // Distinguish succ entries from pred entries of the same neighbor.
      if (Resolved.insert(static_cast<uint64_t>(varRef(Rep)) | (1ULL << 62)))
        ++Count;
    }
  }
  return Count;
}

Digraph ConstraintSolver::varVarDigraph() {
  ensureClosed(); // No-op while a drain is in progress (Draining guard).
  Digraph G(numVars());
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (!Forwarding.isRepresentative(Var))
      continue;
    for (uint32_t Pred : Vars[Var].Preds) {
      if (isTermRef(Pred))
        continue;
      VarId PredRep = Forwarding.find(payloadOf(Pred));
      if (PredRep != Var)
        G.addEdge(PredRep, Var);
    }
    for (uint32_t Succ : Vars[Var].Succs) {
      if (isTermRef(Succ))
        continue;
      VarId SuccRep = Forwarding.find(payloadOf(Succ));
      if (SuccRep != Var)
        G.addEdge(Var, SuccRep);
    }
  }
  return G;
}

uint64_t ConstraintSolver::countPredChainReachable(VarId Var) {
  ensureClosed();
  Var = Forwarding.find(Var);
  ++CurrentEpoch;
  Vars[Var].VisitEpoch = CurrentEpoch;
  std::vector<VarId> Stack = {Var};
  uint64_t Count = 0;
  while (!Stack.empty()) {
    VarId Node = Stack.back();
    Stack.pop_back();
    for (uint32_t Pred : Vars[Node].Preds) {
      if (isTermRef(Pred))
        continue;
      VarId Next = Forwarding.find(payloadOf(Pred));
      if (Vars[Next].VisitEpoch == CurrentEpoch)
        continue;
      Vars[Next].VisitEpoch = CurrentEpoch;
      ++Count;
      Stack.push_back(Next);
    }
  }
  return Count;
}

uint64_t ConstraintSolver::compact() {
  ensureClosed();
  invalidateWaveOrder(); // The CSR rows mirror the lists being rewritten.
  uint64_t Removed = 0;
  DenseU64Set Seen;
  for (VarId Var = 0; Var != numVars(); ++Var) {
    VarNode &Node = Vars[Var];
    if (!Forwarding.isRepresentative(Var)) {
      // Dead variables were already drained during their collapse; make
      // sure nothing lingers.
      Removed += Node.Preds.size() + Node.Succs.size();
      Node.Preds.clear();
      Node.Succs.clear();
      Node.PredVarSet = DenseU64Set();
      Node.SuccVarSet = DenseU64Set();
      Node.PredTerms = SparseBitVector();
      Node.SuccTerms = SparseBitVector();
      Node.SrcDelta = SparseBitVector();
      continue;
    }
    // Term entries are already unique and resolve to themselves, so only
    // the variable entries need resolution and deduplication; the term
    // bitmaps carry over unchanged.
    auto Rebuild = [&](std::vector<uint32_t> &List, DenseU64Set &VarSet) {
      Seen.clear();
      std::vector<uint32_t> Fresh;
      Fresh.reserve(List.size());
      for (uint32_t Entry : List) {
        if (isTermRef(Entry)) {
          Fresh.push_back(Entry);
          continue;
        }
        uint32_t Resolved = varRef(Forwarding.find(payloadOf(Entry)));
        if (payloadOf(Resolved) == Var) {
          ++Removed;
          continue; // Self reference left by a collapse.
        }
        if (!Seen.insert(Resolved)) {
          ++Removed;
          continue; // Duplicate after resolution.
        }
        Fresh.push_back(Resolved);
      }
      List = std::move(Fresh);
      DenseU64Set FreshSet;
      for (uint32_t Entry : List)
        if (!isTermRef(Entry))
          FreshSet.insert(Entry);
      VarSet = std::move(FreshSet);
    };
    Rebuild(Node.Preds, Node.PredVarSet);
    Rebuild(Node.Succs, Node.SuccVarSet);
  }
  return Removed;
}

std::string ConstraintSolver::dumpGraph() {
  ensureClosed();
  std::string Out;
  for (VarId Var = 0; Var != numVars(); ++Var) {
    if (!Forwarding.isRepresentative(Var))
      continue;
    const VarNode &Node = Vars[Var];
    Out += "var " + (Node.Name.empty() ? "X" + std::to_string(Var)
                                       : Node.Name);
    Out += " (order " + std::to_string(Node.Order) + ")\n";
    auto Dump = [&](const char *Label, const std::vector<uint32_t> &List) {
      if (List.empty())
        return;
      Out += std::string("  ") + Label + ":";
      for (uint32_t Entry : List) {
        Out += " ";
        if (isTermRef(Entry)) {
          Out += exprStr(payloadOf(Entry));
        } else {
          VarId Rep = Forwarding.find(payloadOf(Entry));
          Out += Vars[Rep].Name.empty() ? "X" + std::to_string(Rep)
                                        : Vars[Rep].Name;
        }
      }
      Out += "\n";
    };
    Dump("pred", Node.Preds);
    Dump("succ", Node.Succs);
  }
  return Out;
}

std::string ConstraintSolver::exprStr(ExprId Id) const {
  return Terms.str(Id, [this](VarId Var) {
    return Vars[Var].Name.empty() ? "X" + std::to_string(Var)
                                  : Vars[Var].Name;
  });
}

void SolverStats::exportTo(MetricsRegistry &Registry) const {
  for (const NamedCounter &C : allCounters())
    Registry.gauge(std::string("poce_solver_") + C.Key,
                   "Solver counter (see SolverStats)")
        .set(C.Value);
  Registry
      .gauge("poce_solver_aborted",
             "1 if the last exported solve hit a budget and stopped early")
      .set(Aborted ? 1 : 0);
}
