//===- andersen/Steensgaard.h - Unification-based points-to ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steensgaard's near-linear, unification-based points-to analysis — the
/// baseline of the paper's Section 6 discussion: Shapiro and Horwitz
/// [SH97] found Andersen's inclusion-based analysis substantially more
/// precise but impractically slow; the paper's contribution is that with
/// online cycle elimination Andersen's analysis becomes competitive. This
/// implementation provides the other side of that comparison.
///
/// Model: every abstract location is a *cell* in a union-find forest; each
/// cell class has at most one pointee class (its "points-to" edge) and at
/// most one function signature. Assignments unify the pointees of the two
/// sides; dereferences follow the pointee edge; joins merge recursively.
/// All operations are almost-constant-time, so the whole analysis is
/// effectively linear in program size — at the cost of symmetric,
/// flow-blind merging (storing two pointers in one location equates their
/// targets forever).
///
/// The location model matches the Andersen implementation (field-
/// insensitive; self-containing arrays and functions; one heap location
/// per allocation site), so the two analyses' points-to sets are directly
/// comparable and Andersen ⊆ Steensgaard holds location-for-location.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_ANDERSEN_STEENSGAARD_H
#define POCE_ANDERSEN_STEENSGAARD_H

#include "minic/AST.h"

#include <map>
#include <string>
#include <vector>

namespace poce {
namespace andersen {

/// Result of a Steensgaard run, shaped like AnalysisResult's points-to
/// portion for direct comparison.
struct SteensgaardResult {
  /// Location name -> sorted names of locations it may point to.
  std::map<std::string, std::vector<std::string>> PointsTo;
  /// Abstract locations (named cells).
  uint32_t NumLocations = 0;
  /// Total union-find cells (locations + anonymous).
  uint32_t NumCells = 0;
  /// Class merges performed.
  uint64_t Joins = 0;
  /// Seconds for the whole analysis (generation + unification +
  /// extraction).
  double AnalysisSeconds = 0;

  std::vector<std::string> pointsTo(const std::string &Name) const {
    auto It = PointsTo.find(Name);
    return It == PointsTo.end() ? std::vector<std::string>() : It->second;
  }
};

/// Runs Steensgaard's analysis over \p Unit.
SteensgaardResult runSteensgaard(const minic::TranslationUnit &Unit);

} // namespace andersen
} // namespace poce

#endif // POCE_ANDERSEN_STEENSGAARD_H
