//===- setcon/SolverOptions.h - Solver configuration ------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of a ConstraintSolver: graph representation (standard or
/// inductive form), cycle-elimination strategy (none, partial online,
/// oracle), variable ordering, and policies. The six main configurations of
/// the paper's Table 4 are spelled SF-Plain, IF-Plain, SF-Oracle,
/// IF-Oracle, SF-Online, and IF-Online.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_SOLVEROPTIONS_H
#define POCE_SETCON_SOLVEROPTIONS_H

#include <cstdint>
#include <string>

namespace poce {

/// Graph representation of variable-variable constraints (Sections 2.3
/// and 2.4).
enum class GraphForm : uint8_t {
  /// Standard form: every X <= Y is a successor edge of X; the closed
  /// graph contains the least solution explicitly.
  Standard,
  /// Inductive form: X <= Y is a predecessor edge of Y when o(X) < o(Y)
  /// and a successor edge of X otherwise; the least solution is computed
  /// by a post-pass over predecessor chains.
  Inductive,
};

/// Cycle-elimination strategy (Section 2.5).
enum class CycleElim : uint8_t {
  /// No cycle elimination.
  None,
  /// Partial online detection: bounded chain search at every
  /// variable-variable edge insertion; found cycles collapse onto the
  /// lowest-ordered witness.
  Online,
  /// Perfect elimination: an Oracle predicts each fresh variable's final
  /// strongly connected component and substitutes the component witness at
  /// creation time, so graphs stay acyclic.
  Oracle,
  /// Periodic offline elimination, the strategy of prior work the paper
  /// argues against ([FA96, FF97, MW97]): every PeriodicInterval edge
  /// additions, compute all SCCs of the variable graph and collapse them.
  /// Effective, but the pass cost must be amortized by choosing a good
  /// frequency — the tuning problem online elimination removes.
  Periodic,
};

/// Direction restriction of the standard-form chain search. The paper's
/// default follows successor edges toward lower-ordered variables; it
/// reports that searching increasing chains detects more cycles (57%) at a
/// cost that outweighs the benefit. Exposed for the ablation bench.
enum class SFChainMode : uint8_t {
  Decreasing,
  Increasing,
  Both,
};

/// How variable order indices o(.) are assigned. The paper uses a random
/// order and reports it performs as well as or better than any other
/// order tried; the alternatives feed the order ablation.
enum class OrderKind : uint8_t {
  Random,
  Creation,
  ReverseCreation,
};

/// What to do with structurally mismatched constraints such as
/// c(...) <= d(...) or 1 <= c(...). Points-to analysis of C ignores them
/// (ill-typed flows); the solver can also collect them as errors.
enum class MismatchPolicy : uint8_t {
  Ignore,
  Collect,
};

/// How the closure fixpoint is scheduled.
enum class ClosureMode : uint8_t {
  /// Eager worklist at edge granularity: every addConstraint drains all
  /// consequences before returning (the paper's online discipline).
  Worklist,
  /// Deferred wave propagation: addConstraint only queues the constraint;
  /// closure runs when a solution or graph observer needs it. Structural
  /// consequences still drain through the same worklist discipline, but
  /// standard-form source deltas accumulate and flush in topological
  /// order over the condensed variable graph — one batched delivery per
  /// edge per wave instead of one per arrival. Solutions are identical to
  /// Worklist; so are the paper's counters on cycle-free closures (the
  /// multiset of (source, edge) delivery attempts is schedule-independent),
  /// while collapse interleaving can shift order-sensitive counters the
  /// same way DiffProp already does under SF-Online. See
  /// docs/INTERNALS.md, "Wave propagation and data layout".
  Wave,
};

/// Optional pre-solve preprocessing of the constraint system.
enum class PreprocessMode : uint8_t {
  /// No preprocessing: every constraint goes straight through the online
  /// closure discipline.
  None,
  /// Offline HVN variable substitution before the first closure: initial
  /// addConstraint calls are deferred; when the first solution query (or
  /// graph observer) forces ensureClosed(), the pre-closure variable
  /// graph is condensed with Nuutila's SCC algorithm and an HVN-style
  /// pointer-equivalence labeling merges provably-equivalent variables
  /// through the union-find, after which the deferred constraints replay
  /// through the unchanged online path. Solutions are bit-identical with
  /// the pass on or off for the bulk-loaded system; partial online
  /// elimination then only has to catch the cycles that *form during*
  /// closure.
  ///
  /// Contract: like CycleElim::Oracle, the pass assumes the deferred bulk
  /// load is the complete constraint system. SCC collapses stay exact
  /// however the system grows (mutual inclusion is permanent), but the
  /// HVN copy-chain and empty-class merges are justified only by the
  /// constraints visible at pass time. Constraints added after the first
  /// closure take the online path directly against the merged quotient
  /// (the pass runs at most once, on the initial bulk load); new flow
  /// into an HVN-merged class is shared by the whole class, so
  /// post-closure solutions are a sound over-approximation of the
  /// unmerged system — exact when the adds touch no HVN-merged variable.
  /// See docs/INTERNALS.md, "Offline preprocessing (HVN + Nuutila SCC)".
  Offline,
};

/// Full configuration of one solver instance.
struct SolverOptions {
  GraphForm Form = GraphForm::Inductive;
  CycleElim Elim = CycleElim::Online;
  SFChainMode SFChains = SFChainMode::Decreasing;
  OrderKind Order = OrderKind::Random;
  MismatchPolicy Mismatch = MismatchPolicy::Ignore;
  /// Seed for the random variable order.
  uint64_t Seed = 0x706f6365ULL;
  /// Abort the solve when total work exceeds this bound (0 = unlimited).
  uint64_t MaxWork = 0;
  /// Abort the in-flight batch when the closure loop has run longer than
  /// this many wall-clock milliseconds (0 = unlimited). The clock starts
  /// when the top-level worklist drain begins, so incremental serving can
  /// bound the latency of a single `add`. Checked every few worklist
  /// items, so the overshoot past the deadline is tiny compared to 2x.
  uint64_t DeadlineMs = 0;
  /// Abort the in-flight batch when it alone performs more than this many
  /// edge additions (0 = unlimited). Unlike MaxWork — a cumulative
  /// lifetime bound — this resets at every top-level drain, so a warm
  /// server can cap each request without counting the work that built the
  /// existing graph.
  uint64_t MaxEdgeBudget = 0;
  /// Abort the in-flight batch when the process resident set exceeds this
  /// many bytes (0 = unlimited; also inert on platforms without
  /// support::currentRSSBytes). Checked sparsely — every few thousand
  /// worklist items — because reading /proc costs a syscall.
  uint64_t MaxMemBytes = 0;
  /// Edge additions between offline passes under CycleElim::Periodic.
  uint64_t PeriodicInterval = 50000;
  /// When true, every variable-variable constraint is recorded (in
  /// creation-index space) for SCC ground truth and oracle construction.
  bool RecordVarVar = false;
  /// Standard form only: propagate sources with batched difference
  /// propagation (word-level delta flushes along successor edges) instead
  /// of one worklist item per (source, edge) pair. Least solutions are
  /// identical either way, and so are the paper's counters on cycle-free
  /// closures; with collapses the two schemes interleave edge re-adds
  /// differently, so order-sensitive counters (Work under SF-Online) can
  /// differ the same way they would under any worklist reordering. Turn
  /// off to reproduce the element-wise accounting exactly.
  bool DiffProp = true;
  /// Closure scheduling (see ClosureMode). Worklist preserves the fully
  /// online behavior; Wave trades per-add eagerness for batched,
  /// cache-conscious bulk closure.
  ClosureMode Closure = ClosureMode::Worklist;
  /// Pre-solve preprocessing (see PreprocessMode). Orthogonal to the
  /// closure schedule: Offline shrinks the variable graph before the
  /// first closure, then either schedule closes the condensed system.
  PreprocessMode Preprocess = PreprocessMode::None;
  /// Wave closure only: flush deltas through the cache-conscious SoA edge
  /// rows (CSR successor arrays sorted by topological position, targets
  /// pre-resolved through forwarding) instead of the per-node adjacency
  /// lists. Purely a layout toggle — deliveries, counters, and solutions
  /// are identical either way; exposed for the ablation bench.
  bool WaveSoA = true;
  /// Execution lanes for the least-solution post-pass (0 = one per
  /// hardware thread). Purely a wall-clock knob: with any value the least
  /// solutions and every paper-defined counter are bit-identical to the
  /// sequential pass — the online closure itself always runs
  /// single-threaded. Values > 1 evaluate the acyclic inductive-form
  /// recurrence as a level-parallel wavefront and materialize solution
  /// views concurrently (see docs/INTERNALS.md, "Parallel execution
  /// layer").
  unsigned Threads = 1;

  /// Returns the paper's name for this configuration, e.g. "IF-Online".
  std::string configName() const {
    std::string Name = Form == GraphForm::Standard ? "SF" : "IF";
    switch (Elim) {
    case CycleElim::None:
      Name += "-Plain";
      break;
    case CycleElim::Online:
      Name += "-Online";
      break;
    case CycleElim::Oracle:
      Name += "-Oracle";
      break;
    case CycleElim::Periodic:
      Name += "-Periodic";
      break;
    }
    return Name;
  }
};

/// The six experiment configurations of the paper's Table 4, in its order.
inline SolverOptions makeConfig(GraphForm Form, CycleElim Elim,
                                uint64_t Seed = 0x706f6365ULL) {
  SolverOptions Options;
  Options.Form = Form;
  Options.Elim = Elim;
  Options.Seed = Seed;
  return Options;
}

} // namespace poce

#endif // POCE_SETCON_SOLVEROPTIONS_H
