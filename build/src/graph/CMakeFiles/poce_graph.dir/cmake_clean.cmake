file(REMOVE_RECURSE
  "CMakeFiles/poce_graph.dir/Digraph.cpp.o"
  "CMakeFiles/poce_graph.dir/Digraph.cpp.o.d"
  "CMakeFiles/poce_graph.dir/DotWriter.cpp.o"
  "CMakeFiles/poce_graph.dir/DotWriter.cpp.o.d"
  "CMakeFiles/poce_graph.dir/RandomGraph.cpp.o"
  "CMakeFiles/poce_graph.dir/RandomGraph.cpp.o.d"
  "CMakeFiles/poce_graph.dir/TarjanSCC.cpp.o"
  "CMakeFiles/poce_graph.dir/TarjanSCC.cpp.o.d"
  "libpoce_graph.a"
  "libpoce_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
