//===- support/PRNG.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
/// Everything random in this project — variable orders, synthetic
/// workloads, random constraint graphs — flows through this class so that
/// experiments are reproducible from a single seed.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_PRNG_H
#define POCE_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>
#include <utility>

namespace poce {

/// SplitMix64 step; used for seeding and as a standalone mixer.
inline uint64_t splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// xoshiro256** generator with convenience helpers.
class PRNG {
public:
  explicit PRNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  void reseed(uint64_t Seed) {
    uint64_t SM = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(SM);
  }

  uint64_t nextU64() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  uint32_t nextU32() { return static_cast<uint32_t>(nextU64() >> 32); }

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) has no valid result!");
    // Lemire's unbiased multiply-shift rejection method.
    uint64_t X = nextU64();
    __uint128_t M = static_cast<__uint128_t>(X) * Bound;
    uint64_t Low = static_cast<uint64_t>(M);
    if (Low < Bound) {
      uint64_t Threshold = (0 - Bound) % Bound;
      while (Low < Threshold) {
        X = nextU64();
        M = static_cast<__uint128_t>(X) * Bound;
        Low = static_cast<uint64_t>(M);
      }
    }
    return static_cast<uint64_t>(M >> 64);
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "nextRange() with empty range!");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Copies the raw xoshiro256** state out; paired with setState() this
  /// lets a snapshot resume the generator mid-stream (the solver's order
  /// RNG must continue identically after a save/load round trip).
  void getState(uint64_t Out[4]) const {
    for (int I = 0; I != 4; ++I)
      Out[I] = State[I];
  }

  /// Restores state captured by getState().
  void setState(const uint64_t In[4]) {
    for (int I = 0; I != 4; ++I)
      State[I] = In[I];
  }

  /// Fisher–Yates shuffles a random-access range.
  template <typename RandomIt> void shuffle(RandomIt First, RandomIt Last) {
    auto N = Last - First;
    for (decltype(N) I = N - 1; I > 0; --I) {
      auto J = static_cast<decltype(N)>(nextBelow(static_cast<uint64_t>(I) + 1));
      using std::swap;
      swap(First[I], First[J]);
    }
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace poce

#endif // POCE_SUPPORT_PRNG_H
