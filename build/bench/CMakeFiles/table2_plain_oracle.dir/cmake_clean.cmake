file(REMOVE_RECURSE
  "CMakeFiles/table2_plain_oracle.dir/table2_plain_oracle.cpp.o"
  "CMakeFiles/table2_plain_oracle.dir/table2_plain_oracle.cpp.o.d"
  "table2_plain_oracle"
  "table2_plain_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_plain_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
