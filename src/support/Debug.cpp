//===- support/Debug.cpp - Debug output macro -----------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Debug.h"

#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

using namespace poce;

namespace {
/// Parsed POCE_DEBUG environment variable state.
struct DebugTypes {
  bool All = false;
  std::set<std::string> Types;

  DebugTypes() {
    const char *Env = std::getenv("POCE_DEBUG");
    if (!Env)
      return;
    if (!std::strcmp(Env, "all") || !std::strcmp(Env, "1")) {
      All = true;
      return;
    }
    std::string Current;
    for (const char *P = Env;; ++P) {
      if (*P == ',' || *P == '\0') {
        if (!Current.empty())
          Types.insert(Current);
        Current.clear();
        if (*P == '\0')
          break;
      } else {
        Current.push_back(*P);
      }
    }
  }
};
} // namespace

bool poce::isDebugTypeEnabled(const char *Type) {
  static DebugTypes Parsed;
  return Parsed.All || Parsed.Types.count(Type);
}
