//===- bench/baseline_steensgaard.cpp - The Section 6 comparison -----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's framing result (Section 6): Shapiro & Horwitz [SH97] found
/// Andersen's analysis far more precise than Steensgaard's
/// unification-based analysis but impractically slow — and this paper's
/// claim is that online cycle elimination closes the performance gap.
/// This bench runs both analyses over the suite and reports time and
/// precision (total and average points-to set sizes over named locations,
/// lower = more precise).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "andersen/Steensgaard.h"

using namespace poce;
using namespace poce::bench;

namespace {

struct Precision {
  uint64_t TotalTargets = 0;
  uint64_t NonEmpty = 0;

  double average() const {
    return NonEmpty ? double(TotalTargets) / double(NonEmpty) : 0.0;
  }
};

Precision measure(const std::map<std::string, std::vector<std::string>> &P) {
  Precision Result;
  for (const auto &[Name, Targets] : P) {
    if (Targets.empty())
      continue;
    ++Result.NonEmpty;
    Result.TotalTargets += Targets.size();
  }
  return Result;
}

} // namespace

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Baseline: Andersen (IF-Online) vs Steensgaard ===\n");
  Env.print();

  TextTable Table({"Benchmark", "AST", "And-s", "St-s", "St/And-speed",
                   "And-avgPts", "St-avgPts", "precision-x"});
  double SumPrecision = 0, SumSpeed = 0;
  unsigned Count = 0;
  for (auto &Entry : prepareSuite(Env)) {
    // Andersen, IF-Online, including points-to extraction so precision is
    // measured on the same representation.
    double AndersenBest = 0;
    andersen::AnalysisResult Andersen;
    for (unsigned Repeat = 0; Repeat != Env.Repeats; ++Repeat) {
      Andersen = andersen::runAnalysis(
          Entry->Program->Unit, Entry->Constructors,
          makeConfig(GraphForm::Inductive, CycleElim::Online), nullptr,
          /*ExtractPointsTo=*/true);
      if (Repeat == 0 || Andersen.AnalysisSeconds < AndersenBest)
        AndersenBest = Andersen.AnalysisSeconds;
    }

    double SteensBest = 0;
    andersen::SteensgaardResult Steens;
    for (unsigned Repeat = 0; Repeat != Env.Repeats; ++Repeat) {
      Steens = andersen::runSteensgaard(Entry->Program->Unit);
      if (Repeat == 0 || Steens.AnalysisSeconds < SteensBest)
        SteensBest = Steens.AnalysisSeconds;
    }

    Precision AndersenPrecision = measure(Andersen.PointsTo);
    Precision SteensPrecision = measure(Steens.PointsTo);
    double PrecisionRatio =
        AndersenPrecision.average()
            ? SteensPrecision.average() / AndersenPrecision.average()
            : 0.0;
    double SpeedRatio = SteensBest > 0 ? AndersenBest / SteensBest : 0.0;
    SumPrecision += PrecisionRatio;
    SumSpeed += SpeedRatio;
    ++Count;

    Table.addRow({Entry->Program->Spec.Name,
                  formatGrouped(Entry->Program->AstNodes),
                  formatDouble(AndersenBest, 3), formatDouble(SteensBest, 3),
                  formatDouble(SpeedRatio, 1),
                  formatDouble(AndersenPrecision.average(), 2),
                  formatDouble(SteensPrecision.average(), 2),
                  formatDouble(PrecisionRatio, 2)});
  }
  Table.print();
  if (Count)
    std::printf("\naverages: Steensgaard points-to sets %.1fx larger "
                "(less precise); Andersen with online elimination runs "
                "%.1fx Steensgaard's time.\n",
                SumPrecision / Count, SumSpeed / Count);
  std::printf("paper context: [SH97] found Andersen impractical; online "
              "cycle elimination makes it competitive with unification.\n");
  return 0;
}
