//===- minic/PrettyPrinter.h - AST rendering --------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders MiniC ASTs back to C-like source text and to an indented
/// structural dump. The printer is for diagnostics and tests: the emitted
/// source parses back to an equivalent tree (round-trip checked in the
/// test suite), and the dump makes generator/parser bugs visible.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MINIC_PRETTYPRINTER_H
#define POCE_MINIC_PRETTYPRINTER_H

#include "minic/AST.h"

#include <string>

namespace poce {
namespace minic {

/// Renders \p E as a C expression (fully parenthesized, so precedence is
/// explicit and re-parsing is unambiguous).
std::string printExpr(const Expr *E);

/// Renders \p S as C statements with \p Indent leading spaces.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders a whole translation unit as C-like source.
std::string printUnit(const TranslationUnit &Unit);

/// Indented one-node-per-line structural dump (kinds + salient fields).
std::string dumpAST(const TranslationUnit &Unit);

} // namespace minic
} // namespace poce

#endif // POCE_MINIC_PRETTYPRINTER_H
