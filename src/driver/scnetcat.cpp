//===- driver/scnetcat.cpp - Line-protocol client for scserved ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// scnetcat: a tiny nc(1)-alike for the serve protocol, so scripted
/// sessions against a socket-mode scserved need no external tools:
///
///   scnetcat --unix /tmp/poce.sock  < requests.txt
///   scnetcat --connect 127.0.0.1:7075
///
/// Reads request lines from stdin, sends each, prints the reply (all
/// payload lines for the multi-line `metrics` reply). Exits 0 on stdin
/// EOF, 1 on connection errors.
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace poce;

int main(int Argc, char **Argv) {
  CommandLine Cmd("scnetcat",
                  "send newline-protocol requests to a socket-mode "
                  "scserved and print the replies");
  std::string Tcp;
  std::string Unix;
  int64_t RetryMs = 0;
  Cmd.addString("connect", &Tcp, "TCP server address as host:port");
  Cmd.addString("unix", &Unix, "Unix-domain socket path");
  Cmd.addInt("retry-ms", &RetryMs,
             "retry the connect with jittered exponential backoff for up "
             "to this long before giving up (0 = single attempt), so "
             "scripts need not race server startup with sleeps");
  if (!Cmd.parse(Argc, Argv))
    return 1;
  if (Tcp.empty() == Unix.empty()) {
    std::fprintf(stderr,
                 "scnetcat: exactly one of --connect or --unix\n");
    return 1;
  }

  net::LineClient Client;
  uint64_t Deadline = static_cast<uint64_t>(RetryMs);
  Status Connected =
      Deadline ? (Tcp.empty() ? Client.connectUnixWithBackoff(Unix, Deadline)
                              : Client.connectTcpWithBackoff(Tcp, Deadline))
               : (Tcp.empty() ? Client.connectUnix(Unix)
                              : Client.connectTcp(Tcp));
  if (!Connected) {
    std::fprintf(stderr, "scnetcat: %s\n", Connected.toString().c_str());
    return 1;
  }

  std::string Line;
  while (std::getline(std::cin, Line)) {
    // Blank and comment lines get no reply from the server; sending
    // them and waiting would deadlock the lockstep loop, so skip here.
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    std::string Reply;
    Status Got = Client.request(Line, Reply);
    if (!Got) {
      std::fprintf(stderr, "scnetcat: %s\n", Got.toString().c_str());
      return 1;
    }
    std::printf("%s\n", Reply.c_str());
    std::fflush(stdout);
    if (Reply == "ok bye")
      break;
  }
  return 0;
}
