//===- support/Timer.cpp - Wall-clock timing ------------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

// Header-only; this file anchors the translation unit for the library.
