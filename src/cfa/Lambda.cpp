//===- cfa/Lambda.cpp - Mini functional language ----------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "cfa/Lambda.h"

#include <cctype>

using namespace poce;
using namespace poce::cfa;

Term *LambdaProgram::make(Term::Kind K) {
  Pool.push_back(std::make_unique<Term>());
  Pool.back()->K = K;
  return Pool.back().get();
}

namespace {

/// Hand-rolled scanner/parser; the language is small enough that a token
/// enum would be overkill.
class Parser {
public:
  Parser(const std::string &Source, LambdaProgram &Program)
      : Source(Source), Program(Program) {}

  Term *parse(std::string &Error) {
    Term *Root = parseExpr();
    skipSpace();
    if (!Root) {
      Error = Failure;
      return nullptr;
    }
    if (Pos != Source.size()) {
      Error = "unexpected trailing input at offset " + std::to_string(Pos);
      return nullptr;
    }
    return Root;
  }

private:
  void skipSpace() {
    while (Pos < Source.size()) {
      if (std::isspace(static_cast<unsigned char>(Source[Pos]))) {
        ++Pos;
        continue;
      }
      // Comments: "-- to end of line".
      if (Source[Pos] == '-' && Pos + 1 < Source.size() &&
          Source[Pos + 1] == '-') {
        while (Pos < Source.size() && Source[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  }

  bool eatChar(char C) {
    skipSpace();
    if (Pos < Source.size() && Source[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peekChar(char C) {
    skipSpace();
    return Pos < Source.size() && Source[Pos] == C;
  }

  bool eatArrow() {
    skipSpace();
    if (Pos + 1 < Source.size() && Source[Pos] == '-' &&
        Source[Pos + 1] == '>') {
      Pos += 2;
      return true;
    }
    return false;
  }

  std::string peekWord() {
    skipSpace();
    size_t P = Pos;
    std::string Word;
    while (P < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[P])) ||
            Source[P] == '_'))
      Word.push_back(Source[P++]);
    return Word;
  }

  bool eatKeyword(const char *Keyword) {
    if (peekWord() != Keyword)
      return false;
    Pos += std::string(Keyword).size();
    return true;
  }

  std::string parseIdent() {
    std::string Word = peekWord();
    if (Word.empty() || std::isdigit(static_cast<unsigned char>(Word[0]))) {
      fail("expected identifier");
      return std::string();
    }
    if (Word == "fun" || Word == "let" || Word == "rec" || Word == "in" ||
        Word == "if0" || Word == "then" || Word == "else") {
      fail("expected identifier, found keyword '" + Word + "'");
      return std::string();
    }
    Pos += Word.size();
    return Word;
  }

  Term *fail(const std::string &Message) {
    if (Failure.empty())
      Failure = Message + " at offset " + std::to_string(Pos);
    return nullptr;
  }

  // expr := lambda | let | if0 | arith
  Term *parseExpr() {
    skipSpace();
    if (peekChar('\\') || peekWord() == "fun")
      return parseLambda();
    if (peekWord() == "let")
      return parseLet();
    if (peekWord() == "if0")
      return parseIf0();
    return parseArith();
  }

  Term *parseLambda() {
    if (!eatChar('\\'))
      eatKeyword("fun");
    std::string Param = parseIdent();
    if (Param.empty())
      return nullptr;
    // "\x. e" or "fun x -> e".
    if (!eatArrow() && !eatChar('.'))
      return fail("expected '->' or '.' after lambda parameter");
    Term *Body = parseExpr();
    if (!Body)
      return nullptr;
    Term *Lam = Program.make(Term::Kind::Lam);
    Lam->Name = std::move(Param);
    Lam->A = Body;
    return Lam;
  }

  Term *parseLet() {
    eatKeyword("let");
    bool Recursive = eatKeyword("rec");
    std::string Name = parseIdent();
    if (Name.empty())
      return nullptr;
    if (!eatChar('='))
      return fail("expected '=' in let");
    Term *Bound = parseExpr();
    if (!Bound)
      return nullptr;
    if (!eatKeyword("in"))
      return fail("expected 'in' after let binding");
    Term *Body = parseExpr();
    if (!Body)
      return nullptr;
    Term *Let = Program.make(Term::Kind::Let);
    Let->Name = std::move(Name);
    Let->Recursive = Recursive;
    Let->A = Bound;
    Let->B = Body;
    return Let;
  }

  Term *parseIf0() {
    eatKeyword("if0");
    Term *Cond = parseExpr();
    if (!Cond || !eatKeyword("then"))
      return Cond ? fail("expected 'then'") : nullptr;
    Term *Then = parseExpr();
    if (!Then || !eatKeyword("else"))
      return Then ? fail("expected 'else'") : nullptr;
    Term *Else = parseExpr();
    if (!Else)
      return nullptr;
    Term *If = Program.make(Term::Kind::If0);
    If->A = Cond;
    If->B = Then;
    If->C = Else;
    return If;
  }

  // arith := app (('+' | '-') app)*
  Term *parseArith() {
    Term *Lhs = parseApp();
    if (!Lhs)
      return nullptr;
    while (true) {
      skipSpace();
      // '-' could start '->' only inside lambda, which parseExpr handles.
      if (Pos < Source.size() &&
          (Source[Pos] == '+' || Source[Pos] == '-')) {
        char Op = Source[Pos++];
        Term *Rhs = parseApp();
        if (!Rhs)
          return nullptr;
        Term *Bin = Program.make(Term::Kind::Binop);
        Bin->Op = Op;
        Bin->A = Lhs;
        Bin->B = Rhs;
        Lhs = Bin;
        continue;
      }
      return Lhs;
    }
  }

  // app := atom atom* (left associative)
  Term *parseApp() {
    Term *Lhs = parseAtom();
    if (!Lhs)
      return nullptr;
    while (true) {
      if (!startsAtom())
        return Lhs;
      Term *Rhs = parseAtom();
      if (!Rhs)
        return nullptr;
      Term *App = Program.make(Term::Kind::App);
      App->A = Lhs;
      App->B = Rhs;
      Lhs = App;
    }
  }

  bool startsAtom() {
    skipSpace();
    if (Pos >= Source.size())
      return false;
    char C = Source[Pos];
    if (C == '(')
      return true;
    if (std::isdigit(static_cast<unsigned char>(C)))
      return true;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Word = peekWord();
      return Word != "in" && Word != "then" && Word != "else" &&
             Word != "let" && Word != "if0" && Word != "fun" &&
             Word != "rec";
    }
    return false;
  }

  Term *parseAtom() {
    skipSpace();
    if (eatChar('(')) {
      Term *Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!eatChar(')'))
        return fail("expected ')'");
      return Inner;
    }
    if (Pos < Source.size() &&
        std::isdigit(static_cast<unsigned char>(Source[Pos]))) {
      long long Value = 0;
      while (Pos < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[Pos])))
        Value = Value * 10 + (Source[Pos++] - '0');
      Term *Int = Program.make(Term::Kind::Int);
      Int->Value = Value;
      return Int;
    }
    std::string Name = parseIdent();
    if (Name.empty())
      return nullptr;
    Term *Var = Program.make(Term::Kind::Var);
    Var->Name = std::move(Name);
    return Var;
  }

  const std::string &Source;
  LambdaProgram &Program;
  size_t Pos = 0;
  std::string Failure;
};

void assignLabelsWalk(Term *T, uint32_t &NextLam, uint32_t &NextApp) {
  if (!T)
    return;
  if (T->K == Term::Kind::Lam)
    T->LamLabel = NextLam++;
  if (T->K == Term::Kind::App)
    T->AppSite = NextApp++;
  assignLabelsWalk(T->A, NextLam, NextApp);
  assignLabelsWalk(T->B, NextLam, NextApp);
  assignLabelsWalk(T->C, NextLam, NextApp);
}

} // namespace

void LambdaProgram::assignLabels() {
  NumLambdas = 0;
  NumAppSites = 0;
  assignLabelsWalk(Root, NumLambdas, NumAppSites);
}

bool LambdaProgram::parse(const std::string &Source, std::string *ErrorOut) {
  Pool.clear();
  Root = nullptr;
  std::string Error;
  Parser P(Source, *this);
  Root = P.parse(Error);
  if (!Root) {
    if (ErrorOut)
      *ErrorOut = Error.empty() ? "parse error" : Error;
    return false;
  }
  assignLabels();
  return true;
}
