//===- setcon/Preprocess.h - Offline HVN variable substitution -*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline pre-solve analysis of a pending constraint set
/// (SolverOptions::Preprocess == PreprocessMode::Offline): dry-resolve the
/// input constraints into the pre-closure inclusion graph, condense it with
/// Nuutila's SCC algorithm, then run an HVN-style pointer-equivalence
/// labeling over the condensation (Hardekopf & Lin, "Exploiting Pointer and
/// Location Equivalence to Optimize Pointer Analysis", SAS 2007, adapted to
/// the set-constraint language). Variables with equal labels provably have
/// equal least solutions under any closure schedule, so the solver can
/// merge them through its union-find before the first closure runs —
/// solutions stay bit-identical with the pass on or off, and partial online
/// elimination only has to catch cycles that form *during* closure.
///
/// Soundness of the labeling (why label equality implies equal least
/// solutions forever, not just over the initial graph): every variable that
/// occurs at any depth inside a constructed term is marked *indirect* and
/// its component receives a unique fresh label, because constructor
/// decomposition at closure time can attach new inflow only to such
/// variables. Direct components are value-numbered by their sorted set of
/// predecessor labels and source-term labels in topological order; an
/// empty set means a provably empty solution (label 0) and a singleton set
/// means the component is a pure copy of its one input. Closure-time
/// transitive edges add no new semantic flow, so two variables with equal
/// labels keep equal solutions through the entire solve.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_PREPROCESS_H
#define POCE_SETCON_PREPROCESS_H

#include "setcon/Term.h"

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace poce {

/// Result of the offline analysis: the equivalence classes to merge plus
/// the measurements the SolverStats counters report.
struct OfflineEquivalence {
  /// Merge directives (Var, Witness): unite Var into Witness. Witnesses
  /// are the order-minimal member of each class, matching the online
  /// collapse convention, and every listed Var is distinct from (and
  /// merges into) its class witness.
  std::vector<std::pair<VarId, VarId>> Merges;
  /// Variables collapsed by the SCC condensation alone: sum of
  /// (|SCC| - 1) over nontrivial components. These are true cycle
  /// variables — the offline share of the paper's "fraction of cycles
  /// caught" measure, directly comparable to the Oracle bound.
  uint64_t SCCCollapsedVars = 0;
  /// Variables merged by the HVN labeling beyond the SCC collapses
  /// (copy chains, shared-input equivalences, provably-empty variables).
  uint64_t HVNMergedVars = 0;
  /// Nontrivial (size >= 2) components of the pre-closure graph.
  uint64_t NontrivialSCCs = 0;
  /// Distinct pointer-equivalence labels over the condensed components.
  uint64_t Labels = 0;
};

/// Analyzes \p Constraints (the pending L <= R pairs of a pristine solver
/// over \p NumVars variables) and returns the provably-sound variable
/// merges. \p OrderOf supplies the solver's order indices o(.) so class
/// witnesses follow the online lowest-order convention. Pure analysis: no
/// solver state is touched and \p Terms is only read.
OfflineEquivalence
offlinePreprocess(const TermTable &Terms,
                  const std::vector<std::pair<ExprId, ExprId>> &Constraints,
                  uint32_t NumVars,
                  const std::function<uint64_t(VarId)> &OrderOf);

} // namespace poce

#endif // POCE_SETCON_PREPROCESS_H
