//===- tests/snapshot_test.cpp - GraphSnapshot round trips -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// Persistence tests for serve/GraphSnapshot: save→load round trips must be
// bit-identical and answer-identical across SF/IF × None/Online × DiffProp
// and across thread counts, loading must continue exactly like the
// original solver (including the order RNG), and every malformed input —
// truncations, byte flips, version skew, wrong magic — must fail with an
// actionable error instead of crashing.
//
//===----------------------------------------------------------------------===//

#include "serve/GraphSnapshot.h"

#include "andersen/Andersen.h"
#include "graph/RandomGraph.h"
#include "setcon/ConstraintFile.h"
#include "setcon/Oracle.h"
#include "support/ByteStream.h"
#include "support/PRNG.h"
#include "workload/RandomConstraints.h"

#include "gtest/gtest.h"

#include <fstream>
#include <sstream>

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

using namespace poce;
using namespace poce::serve;

namespace {

struct OwnedSolver {
  std::unique_ptr<ConstructorTable> Constructors;
  std::unique_ptr<TermTable> Terms;
  std::unique_ptr<ConstraintSolver> Solver;

  explicit OwnedSolver(SolverOptions Options)
      : Constructors(std::make_unique<ConstructorTable>()),
        Terms(std::make_unique<TermTable>(*Constructors)),
        Solver(std::make_unique<ConstraintSolver>(*Terms, Options)) {}
};

/// The nine serializable configurations the round-trip matrix covers.
std::vector<SolverOptions> snapshotConfigs() {
  std::vector<SolverOptions> Configs;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive})
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online})
      for (bool DiffProp : {false, true}) {
        SolverOptions Options = makeConfig(Form, Elim);
        Options.DiffProp = DiffProp;
        Configs.push_back(Options);
      }
  SolverOptions Periodic = makeConfig(GraphForm::Inductive,
                                      CycleElim::Periodic);
  Periodic.PeriodicInterval = 64;
  Configs.push_back(Periodic);
  return Configs;
}

void expectStatsEqual(const SolverStats &A, const SolverStats &B,
                      const std::string &Context,
                      bool IgnoreLSUnionWords = false) {
  EXPECT_EQ(A.VarsCreated, B.VarsCreated) << Context;
  EXPECT_EQ(A.OracleSubstitutions, B.OracleSubstitutions) << Context;
  EXPECT_EQ(A.InitialEdges, B.InitialEdges) << Context;
  EXPECT_EQ(A.DistinctSources, B.DistinctSources) << Context;
  EXPECT_EQ(A.DistinctSinks, B.DistinctSinks) << Context;
  EXPECT_EQ(A.Work, B.Work) << Context;
  EXPECT_EQ(A.RedundantAdds, B.RedundantAdds) << Context;
  EXPECT_EQ(A.SelfEdges, B.SelfEdges) << Context;
  EXPECT_EQ(A.VarsEliminated, B.VarsEliminated) << Context;
  EXPECT_EQ(A.CyclesCollapsed, B.CyclesCollapsed) << Context;
  EXPECT_EQ(A.CycleSearchSteps, B.CycleSearchSteps) << Context;
  EXPECT_EQ(A.CycleSearches, B.CycleSearches) << Context;
  EXPECT_EQ(A.PeriodicPasses, B.PeriodicPasses) << Context;
  EXPECT_EQ(A.Mismatches, B.Mismatches) << Context;
  EXPECT_EQ(A.ConstraintsProcessed, B.ConstraintsProcessed) << Context;
  if (!IgnoreLSUnionWords)
    EXPECT_EQ(A.LSUnionWords, B.LSUnionWords) << Context;
  EXPECT_EQ(A.DeltaPropagations, B.DeltaPropagations) << Context;
  EXPECT_EQ(A.PropagationsPruned, B.PropagationsPruned) << Context;
  EXPECT_EQ(A.Aborted, B.Aborted) << Context;
  EXPECT_EQ(A.Abort, B.Abort) << Context;
}

/// Full answer-equivalence between an original solver and a loaded one:
/// reference least solutions, stats, edge count, graph dump, collapse
/// structure, and re-serialized bytes.
void expectEquivalent(ConstraintSolver &Original, ConstraintSolver &Loaded,
                      const std::vector<uint8_t> &OriginalBytes,
                      const std::string &Context) {
  ASSERT_EQ(Original.numVars(), Loaded.numVars()) << Context;
  ASSERT_EQ(Original.numCreations(), Loaded.numCreations()) << Context;

  // Re-serialize before any queries: answering queries finalizes the
  // loaded solver, which (correctly) grows an unfinalized snapshot by the
  // materialized least-solution bitmaps.
  std::vector<uint8_t> Reserialized;
  Status Reserialize = GraphSnapshot::serialize(Loaded, Reserialized);
  ASSERT_TRUE(Reserialize.ok()) << Context << ": " << Reserialize;
  EXPECT_EQ(OriginalBytes, Reserialized)
      << Context << ": save(load(save)) is not bit-identical";

  EXPECT_EQ(Original.referenceLeastSolutions(),
            Loaded.referenceLeastSolutions())
      << Context;
  expectStatsEqual(Original.stats(), Loaded.stats(), Context);
  EXPECT_EQ(Original.countFinalEdges(), Loaded.countFinalEdges()) << Context;
  EXPECT_EQ(Original.dumpGraph(), Loaded.dumpGraph()) << Context;
  for (uint32_t C = 0; C != Original.numCreations(); ++C) {
    VarId OriginalVar = Original.varOfCreation(C);
    VarId LoadedVar = Loaded.varOfCreation(C);
    ASSERT_EQ(OriginalVar, LoadedVar) << Context;
    EXPECT_EQ(Original.rep(OriginalVar), Loaded.rep(LoadedVar)) << Context;
    EXPECT_EQ(Original.orderOf(OriginalVar), Loaded.orderOf(LoadedVar))
        << Context;
    EXPECT_EQ(Original.varName(OriginalVar), Loaded.varName(LoadedVar))
        << Context;
  }
  for (VarId Var = 0; Var != Original.numVars(); ++Var)
    if (Original.isLive(Var))
      EXPECT_EQ(Original.leastSolution(Var), Loaded.leastSolution(Var))
          << Context << " var " << Var;
}

void roundTrip(ConstraintSolver &Solver, const std::string &Context) {
  std::vector<uint8_t> Bytes;
  Status Serialized = GraphSnapshot::serialize(Solver, Bytes);
  ASSERT_TRUE(Serialized.ok()) << Context << ": " << Serialized;
  SolverBundle Bundle;
  Status Loaded = GraphSnapshot::deserialize(Bytes.data(), Bytes.size(),
                                             Bundle);
  ASSERT_TRUE(Loaded.ok()) << Context << ": " << Loaded;
  expectEquivalent(Solver, *Bundle.Solver, Bytes, Context);
}

TEST(SnapshotTest, RandomSystemsRoundTripAcrossConfigs) {
  PRNG Rng(0xface);
  RandomConstraintShape Shape =
      randomConstraintShape(/*NumVars=*/80, /*NumCons=*/50,
                            /*EdgeProb=*/2.5 / 80, Rng);
  for (const SolverOptions &Options : snapshotConfigs()) {
    OwnedSolver Original(Options);
    workload::emitRandomConstraints(Shape, *Original.Solver);
    Original.Solver->finalize();
    roundTrip(*Original.Solver,
              Options.configName() +
                  (Options.DiffProp ? "+diffprop" : "-diffprop"));
  }
}

TEST(SnapshotTest, BudgetOptionsRoundTrip) {
  // Version 2 carries the resource budgets; they must survive the round
  // trip bit-for-bit (a recovered server re-arms them from the snapshot).
  PRNG Rng(0xb1d6);
  RandomConstraintShape Shape = randomConstraintShape(30, 20, 2.0 / 30, Rng);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  OwnedSolver Original(Options);
  workload::emitRandomConstraints(Shape, *Original.Solver);
  Original.Solver->finalize();
  Original.Solver->setBudgets(/*DeadlineMs=*/1234, /*MaxEdgeBudget=*/56789,
                              /*MaxMemBytes=*/1ull << 33);

  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(GraphSnapshot::serialize(*Original.Solver, Bytes).ok());
  SolverBundle Bundle;
  Status Loaded =
      GraphSnapshot::deserialize(Bytes.data(), Bytes.size(), Bundle);
  ASSERT_TRUE(Loaded.ok()) << Loaded;
  EXPECT_EQ(Bundle.Solver->options().DeadlineMs, 1234u);
  EXPECT_EQ(Bundle.Solver->options().MaxEdgeBudget, 56789u);
  EXPECT_EQ(Bundle.Solver->options().MaxMemBytes, 1ull << 33);
  roundTrip(*Original.Solver, "budget options");
}

TEST(SnapshotTest, UnfinalizedSolverRoundTrips) {
  PRNG Rng(0xbead);
  RandomConstraintShape Shape =
      randomConstraintShape(40, 30, 2.0 / 40, Rng);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  OwnedSolver Original(Options);
  workload::emitRandomConstraints(Shape, *Original.Solver);
  // No finalize(): the snapshot must carry the unfinalized state and the
  // loaded solver computes least solutions on first query.
  roundTrip(*Original.Solver, "unfinalized IF-Online");
}

TEST(SnapshotTest, CorpusRoundTrips) {
  for (const char *File : {"list.c", "events.c"}) {
    std::ifstream In(std::string(POCE_SOURCE_DIR) + "/examples/data/" + File);
    ASSERT_TRUE(In.good()) << File;
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    minic::TranslationUnit Unit;
    std::vector<std::string> Errors;
    ASSERT_TRUE(andersen::parseSource(Buffer.str(), Unit, &Errors, File))
        << File;

    for (const SolverOptions &Options : snapshotConfigs()) {
      OwnedSolver Original(Options);
      andersen::makeGenerator(Unit)(*Original.Solver);
      Original.Solver->finalize();
      roundTrip(*Original.Solver,
                std::string(File) + " " + Options.configName() +
                    (Options.DiffProp ? "+diffprop" : "-diffprop"));
    }
  }
}

TEST(SnapshotTest, ScsFileRoundTripsThroughDisk) {
  std::ifstream In(std::string(POCE_SOURCE_DIR) + "/examples/data/swap.scs");
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  ConstraintSystemFile System;
  Status Parsed = System.parse(Buffer.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed;

  OwnedSolver Original(makeConfig(GraphForm::Inductive, CycleElim::Online));
  System.emit(*Original.Solver);
  Original.Solver->finalize();

  std::string Path = testing::TempDir() + "poce_snapshot_test.snap";
  Status Saved = GraphSnapshot::save(*Original.Solver, Path);
  ASSERT_TRUE(Saved.ok()) << Saved;
  SolverBundle Bundle;
  Status Loaded = GraphSnapshot::load(Path, Bundle);
  ASSERT_TRUE(Loaded.ok()) << Loaded;

  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(GraphSnapshot::serialize(*Original.Solver, Bytes).ok());
  expectEquivalent(*Original.Solver, *Bundle.Solver, Bytes, "swap.scs");
  std::remove(Path.c_str());
}

TEST(SnapshotTest, LoadedSolverContinuesIdenticallyToOriginal) {
  // Saving mid-stream captures the order RNG, so a loaded solver must
  // assign the same order indices to future variables and collapse the
  // same cycles as the original solver kept running.
  PRNG Rng(0x5eed);
  RandomConstraintShape Shape =
      randomConstraintShape(60, 40, 2.0 / 60, Rng);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  OwnedSolver Original(Options);
  workload::emitRandomConstraints(Shape, *Original.Solver);

  std::vector<uint8_t> Bytes;
  Status Serialized = GraphSnapshot::serialize(*Original.Solver, Bytes);
  ASSERT_TRUE(Serialized.ok()) << Serialized;
  SolverBundle Bundle;
  Status Loaded = GraphSnapshot::deserialize(Bytes.data(), Bytes.size(),
                                             Bundle);
  ASSERT_TRUE(Loaded.ok()) << Loaded;
  ConstraintSolver &LoadedSolver = *Bundle.Solver;

  auto Extend = [](ConstraintSolver &S) {
    VarId A = S.freshVar("post_a");
    VarId B = S.freshVar("post_b");
    VarId First = S.varOfCreation(0);
    S.addConstraint(S.varExpr(A), S.varExpr(B));
    S.addConstraint(S.varExpr(B), S.varExpr(First));
    S.addConstraint(S.varExpr(First), S.varExpr(A));
  };
  Extend(*Original.Solver);
  Extend(LoadedSolver);

  Original.Solver->finalize();
  LoadedSolver.finalize();
  EXPECT_EQ(Original.Solver->referenceLeastSolutions(),
            LoadedSolver.referenceLeastSolutions());
  EXPECT_EQ(Original.Solver->dumpGraph(), LoadedSolver.dumpGraph());
  expectStatsEqual(Original.Solver->stats(), LoadedSolver.stats(),
                   "post-load continuation");
}

TEST(SnapshotTest, ThreadCountOnLoadIsPurelyWallClock) {
  PRNG Rng(0x7777);
  RandomConstraintShape Shape =
      randomConstraintShape(100, 60, 2.5 / 100, Rng);
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  OwnedSolver Original(Options);
  workload::emitRandomConstraints(Shape, *Original.Solver);
  Original.Solver->finalize();

  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(GraphSnapshot::serialize(*Original.Solver, Bytes).ok());

  SolverBundle One, Eight;
  ASSERT_TRUE(
      GraphSnapshot::deserialize(Bytes.data(), Bytes.size(), One).ok());
  ASSERT_TRUE(
      GraphSnapshot::deserialize(Bytes.data(), Bytes.size(), Eight).ok());
  One.Solver->setThreads(1);
  Eight.Solver->setThreads(8);
  One.Solver->materializeAllViews();
  Eight.Solver->materializeAllViews();

  for (VarId Var = 0; Var != One.Solver->numVars(); ++Var)
    if (One.Solver->isLive(Var))
      EXPECT_EQ(One.Solver->leastSolution(Var),
                Eight.Solver->leastSolution(Var))
          << "var " << Var;
  EXPECT_EQ(One.Solver->dumpGraph(), Eight.Solver->dumpGraph());
  expectStatsEqual(One.Solver->stats(), Eight.Solver->stats(),
                   "threads 1 vs 8");

  // With the thread knob normalized the two loads re-serialize to the
  // same bytes (Threads is part of the options block, nothing else may
  // differ).
  Eight.Solver->setThreads(1);
  std::vector<uint8_t> FromOne, FromEight;
  ASSERT_TRUE(GraphSnapshot::serialize(*One.Solver, FromOne).ok());
  ASSERT_TRUE(GraphSnapshot::serialize(*Eight.Solver, FromEight).ok());
  EXPECT_EQ(FromOne, FromEight);
}

TEST(SnapshotTest, RejectsOracleAndAbortedSolvers) {
  PRNG Rng(0xabcd);
  RandomConstraintShape Shape = randomConstraintShape(30, 20, 2.0 / 30, Rng);

  SolverOptions OracleOptions =
      makeConfig(GraphForm::Inductive, CycleElim::Oracle);
  ConstructorTable Constructors;
  Oracle Witness = buildOracle(workload::makeRandomGenerator(Shape),
                               Constructors, OracleOptions);
  TermTable Terms(Constructors);
  ConstraintSolver OracleSolver(Terms, OracleOptions, &Witness);
  workload::emitRandomConstraints(Shape, OracleSolver);
  std::vector<uint8_t> Bytes;
  Status OracleStatus = GraphSnapshot::serialize(OracleSolver, Bytes);
  EXPECT_FALSE(OracleStatus.ok());
  EXPECT_EQ(OracleStatus.code(), ErrorCode::FailedPrecondition);
  EXPECT_NE(OracleStatus.message().find("oracle"), std::string::npos)
      << OracleStatus;

  SolverOptions Tiny = makeConfig(GraphForm::Standard, CycleElim::None);
  Tiny.MaxWork = 1;
  OwnedSolver Aborted(Tiny);
  workload::emitRandomConstraints(Shape, *Aborted.Solver);
  ASSERT_TRUE(Aborted.Solver->stats().Aborted);
  EXPECT_EQ(Aborted.Solver->stats().Abort, SolverStats::AbortReason::MaxWork);
  Status AbortedStatus = GraphSnapshot::serialize(*Aborted.Solver, Bytes);
  EXPECT_FALSE(AbortedStatus.ok());
  EXPECT_EQ(AbortedStatus.code(), ErrorCode::FailedPrecondition);
  EXPECT_NE(AbortedStatus.message().find("aborted"), std::string::npos)
      << AbortedStatus;
}

//===----------------------------------------------------------------------===//
// Hardened loading
//===----------------------------------------------------------------------===//

class SnapshotFuzzTest : public testing::Test {
protected:
  void SetUp() override {
    SolverOptions Options =
        makeConfig(GraphForm::Inductive, CycleElim::Online);
    Original = std::make_unique<OwnedSolver>(Options);
    PRNG Rng(0xfeed);
    RandomConstraintShape Shape =
        randomConstraintShape(25, 16, 2.0 / 25, Rng);
    workload::emitRandomConstraints(Shape, *Original->Solver);
    Original->Solver->finalize();
    Status Serialized = GraphSnapshot::serialize(*Original->Solver, Bytes);
    ASSERT_TRUE(Serialized.ok()) << Serialized;
  }

  std::unique_ptr<OwnedSolver> Original;
  std::vector<uint8_t> Bytes;
};

TEST_F(SnapshotFuzzTest, RejectsGarbageAndBadMagic) {
  SolverBundle Bundle;
  Status Empty = GraphSnapshot::deserialize(nullptr, 0, Bundle);
  EXPECT_FALSE(Empty.ok());
  EXPECT_EQ(Empty.code(), ErrorCode::Corruption);
  EXPECT_NE(Empty.message().find("truncated"), std::string::npos) << Empty;

  std::vector<uint8_t> Garbage(64, 0x5a);
  Status Bad = GraphSnapshot::deserialize(Garbage.data(), Garbage.size(),
                                          Bundle);
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(Bad.message().find("magic"), std::string::npos) << Bad;
}

TEST_F(SnapshotFuzzTest, ReportsVersionSkewAsSuch) {
  // The version field sits right after the magic and outside the
  // checksum, so a bumped version must report as unsupported-version.
  std::vector<uint8_t> Skewed = Bytes;
  Skewed[8] = 0xff;
  SolverBundle Bundle;
  Status St = GraphSnapshot::deserialize(Skewed.data(), Skewed.size(),
                                         Bundle);
  EXPECT_FALSE(St.ok());
  EXPECT_EQ(St.code(), ErrorCode::VersionSkew);
  EXPECT_NE(St.message().find("version"), std::string::npos) << St;
}

TEST_F(SnapshotFuzzTest, RejectsEveryTruncation) {
  SolverBundle Bundle;
  // Every strict prefix must fail cleanly (sampled stride keeps the test
  // fast; the boundaries near the header are covered exhaustively).
  for (size_t Len = 0; Len < Bytes.size();
       Len += (Len < 64 ? 1 : 37)) {
    EXPECT_FALSE(GraphSnapshot::deserialize(Bytes.data(), Len, Bundle).ok())
        << "prefix of " << Len << " bytes loaded";
  }
}

TEST_F(SnapshotFuzzTest, RejectsEveryByteFlip) {
  // Fuzz-ish hardening: flipping any single byte must make the load fail
  // (payload flips trip the checksum; header flips trip magic, version,
  // length, or checksum validation) — and never crash.
  SolverBundle Bundle;
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::vector<uint8_t> Mutated = Bytes;
    Mutated[I] ^= 0xff;
    Status St = GraphSnapshot::deserialize(Mutated.data(), Mutated.size(),
                                           Bundle);
    EXPECT_FALSE(St.ok()) << "byte flip at offset " << I << " loaded";
    EXPECT_FALSE(St.message().empty());
  }
}

TEST_F(SnapshotFuzzTest, RejectsCorruptPayloadEvenWithFixedChecksum) {
  // Deeper than the checksum: re-checksum a semantically corrupt payload
  // (an out-of-range forwarding pointer would index out of bounds if
  // trusted) and confirm the structural validation still rejects it. The
  // forwarding table sits near the end; corrupt a byte there and repair
  // the header checksum.
  for (size_t Back : {size_t{9 * 8 + 19 + 5}, size_t{9 * 8 + 19 + 50},
                      Bytes.size() / 2}) {
    if (Back + 1 >= Bytes.size() - GraphSnapshot::HeaderSize)
      continue;
    std::vector<uint8_t> Mutated = Bytes;
    size_t Offset = Mutated.size() - 1 - Back;
    Mutated[Offset] ^= 0x7f;
    uint64_t Sum = fnv1a64(Mutated.data() + GraphSnapshot::HeaderSize,
                           Mutated.size() - GraphSnapshot::HeaderSize);
    for (int Shift = 0; Shift != 64; Shift += 8)
      Mutated[12 + static_cast<size_t>(Shift / 8)] =
          static_cast<uint8_t>(Sum >> Shift);
    SolverBundle Bundle;
    // Either the structural validation rejects it, or the mutation
    // happened to produce a different-but-valid snapshot (possible for
    // bytes inside stats counters); what must never happen is a crash or
    // an invariant-violating solver.
    Status St = GraphSnapshot::deserialize(Mutated.data(), Mutated.size(),
                                           Bundle);
    if (St.ok())
      EXPECT_TRUE(Bundle.Solver->verifyGraphInvariants());
    else
      EXPECT_FALSE(St.message().empty());
  }
}

} // namespace
