//===- tests/fault_test.cpp - WAL, budgets, rollback, failpoints ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// Fault-tolerance unit tests: the write-ahead log's record format and
// torn-tail handling, failpoint-driven IO fault injection, resource-budget
// aborts with transactional rollback in QueryEngine, and warm-recovery
// equivalence (snapshot + journal replay == never having crashed).
// Process-level crash injection (SIGKILL at armed failpoints) lives in
// scripts/crash_recovery.sh; these tests cover everything observable
// in-process.
//
//===----------------------------------------------------------------------===//

#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "serve/Wal.h"
#include "support/ByteStream.h"
#include "support/FailPoint.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace poce;
using namespace poce::serve;

namespace {

/// Disarms every failpoint on scope exit so a failing ASSERT cannot leak
/// an armed fault into later tests.
struct FailPointGuard {
  ~FailPointGuard() { FailPoint::disarmAll(); }
};

/// A fresh temp-file path; removes any leftover from a previous run.
std::string tempPath(const std::string &Name) {
  std::string Path = testing::TempDir() + "poce_fault_" + Name;
  std::remove(Path.c_str());
  return Path;
}

/// `cons s` plus a propagation chain C0 <= C1 <= ... <= C(N-1). Feeding
/// `s <= C0` afterwards floods s through all N variables — a deterministic
/// way to make one constraint line cost ~N work units.
std::string chainText(unsigned N) {
  std::string Text = "cons s\nvar";
  for (unsigned I = 0; I != N; ++I)
    Text += " C" + std::to_string(I);
  Text += "\n";
  for (unsigned I = 0; I + 1 != N; ++I)
    Text += "C" + std::to_string(I) + " <= C" + std::to_string(I + 1) + "\n";
  return Text;
}

/// Builds an owned bundle by parsing constraint-file text.
SolverBundle makeBundle(const std::string &Text, SolverOptions Options) {
  SolverBundle Bundle;
  Bundle.Constructors = std::make_unique<ConstructorTable>();
  Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
  Bundle.Solver = std::make_unique<ConstraintSolver>(*Bundle.Terms, Options);
  ConstraintSystemFile System;
  Status Parsed = System.parse(Text);
  EXPECT_TRUE(Parsed.ok()) << Parsed;
  if (Parsed.ok())
    System.emit(*Bundle.Solver);
  return Bundle;
}

std::vector<uint8_t> serialized(ConstraintSolver &Solver) {
  std::vector<uint8_t> Bytes;
  Status St = GraphSnapshot::serialize(Solver, Bytes);
  EXPECT_TRUE(St.ok()) << St;
  return Bytes;
}

} // namespace

//===----------------------------------------------------------------------===//
// WriteAheadLog
//===----------------------------------------------------------------------===//

TEST(WalTest, RoundTripAppendReplay) {
  std::string Path = tempPath("roundtrip.wal");
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path).ok());
    EXPECT_EQ(Wal.sizeBytes(), WriteAheadLog::HeaderSize);
    EXPECT_EQ(Wal.records(), 0u);
    ASSERT_TRUE(Wal.append("var X").ok());
    ASSERT_TRUE(Wal.append("cons a").ok());
    ASSERT_TRUE(Wal.append("a <= X").ok());
    EXPECT_EQ(Wal.records(), 3u);
    EXPECT_GT(Wal.sizeBytes(), WriteAheadLog::HeaderSize);
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->Lines,
            (std::vector<std::string>{"var X", "cons a", "a <= X"}));
  EXPECT_EQ(Contents->TornBytes, 0u);
  EXPECT_GT(Contents->ValidBytes, WriteAheadLog::HeaderSize);
  std::remove(Path.c_str());
}

TEST(WalTest, MissingFileReplaysEmpty) {
  Expected<WalContents> Contents =
      WriteAheadLog::replay(tempPath("never_created.wal"));
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_TRUE(Contents->Lines.empty());
  EXPECT_EQ(Contents->ValidBytes, 0u);
  EXPECT_EQ(Contents->TornBytes, 0u);
}

TEST(WalTest, EmptyLineAndBinaryPayloadSurvive) {
  std::string Path = tempPath("payloads.wal");
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path).ok());
    ASSERT_TRUE(Wal.append("").ok());
    ASSERT_TRUE(Wal.append(std::string("a\0b", 3)).ok());
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  ASSERT_EQ(Contents->Lines.size(), 2u);
  EXPECT_EQ(Contents->Lines[0], "");
  EXPECT_EQ(Contents->Lines[1], std::string("a\0b", 3));
  std::remove(Path.c_str());
}

TEST(WalTest, TornTailIsReportedAndTruncatedOnReopen) {
  std::string Path = tempPath("torn.wal");
  uint64_t CleanSize = 0;
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path).ok());
    ASSERT_TRUE(Wal.append("var X").ok());
    ASSERT_TRUE(Wal.append("var Y").ok());
    CleanSize = Wal.sizeBytes();
  }
  // Simulate a crash mid-append: a record prefix claiming more payload
  // than the file holds.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    const char Torn[] = {100, 0, 0, 0, 1, 2, 3}; // len=100, partial sum
    Out.write(Torn, sizeof(Torn));
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->Lines, (std::vector<std::string>{"var X", "var Y"}));
  EXPECT_EQ(Contents->ValidBytes, CleanSize);
  EXPECT_EQ(Contents->TornBytes, 7u);

  // Reopening truncates the tail and resumes appending at the boundary.
  WriteAheadLog Wal;
  ASSERT_TRUE(Wal.open(Path).ok());
  EXPECT_EQ(Wal.sizeBytes(), CleanSize);
  EXPECT_EQ(Wal.records(), 2u);
  ASSERT_TRUE(Wal.append("var Z").ok());
  Wal.close();
  Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->Lines,
            (std::vector<std::string>{"var X", "var Y", "var Z"}));
  EXPECT_EQ(Contents->TornBytes, 0u);
  std::remove(Path.c_str());
}

TEST(WalTest, ChecksumMismatchStopsReplayAtTheFlip) {
  std::string Path = tempPath("flip.wal");
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path).ok());
    ASSERT_TRUE(Wal.append("var X").ok());
    ASSERT_TRUE(Wal.append("var Y").ok());
  }
  // Flip one payload byte of the second record (the last byte on disk).
  {
    std::fstream File(Path,
                      std::ios::binary | std::ios::in | std::ios::out);
    File.seekg(-1, std::ios::end);
    char Byte;
    File.get(Byte);
    File.seekp(-1, std::ios::end);
    File.put(static_cast<char>(Byte ^ 0x40));
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->Lines, (std::vector<std::string>{"var X"}));
  EXPECT_GT(Contents->TornBytes, 0u);
  std::remove(Path.c_str());
}

TEST(WalTest, TruncateToAndResetDropRecords) {
  std::string Path = tempPath("truncate.wal");
  WriteAheadLog Wal;
  ASSERT_TRUE(Wal.open(Path).ok());
  ASSERT_TRUE(Wal.append("one").ok());
  uint64_t AfterOne = Wal.sizeBytes();
  ASSERT_TRUE(Wal.append("two").ok());
  EXPECT_EQ(Wal.records(), 2u);

  // Drop the just-appended record (the rejected-constraint un-ack path).
  ASSERT_TRUE(Wal.truncateTo(AfterOne).ok());
  EXPECT_EQ(Wal.records(), 1u);
  EXPECT_EQ(Wal.sizeBytes(), AfterOne);
  {
    Expected<WalContents> Contents = WriteAheadLog::replay(Path);
    ASSERT_TRUE(Contents.ok()) << Contents.status();
    EXPECT_EQ(Contents->Lines, (std::vector<std::string>{"one"}));
  }

  // Appends still work after truncation.
  ASSERT_TRUE(Wal.append("three").ok());
  EXPECT_EQ(Wal.records(), 2u);

  // Bad targets are rejected without touching the file.
  EXPECT_EQ(Wal.truncateTo(WriteAheadLog::HeaderSize - 1).code(),
            ErrorCode::InvalidArgument);
  EXPECT_EQ(Wal.truncateTo(Wal.sizeBytes() + 1).code(),
            ErrorCode::InvalidArgument);

  // reset() empties back to the header (the checkpoint path).
  ASSERT_TRUE(Wal.reset().ok());
  EXPECT_EQ(Wal.sizeBytes(), WriteAheadLog::HeaderSize);
  EXPECT_EQ(Wal.records(), 0u);
  Wal.close();
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_TRUE(Contents->Lines.empty());
  std::remove(Path.c_str());
}

TEST(WalTest, RejectsBadHeaderAndVersionSkew) {
  std::string Path = tempPath("badheader.wal");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "this is not a WAL header at all";
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_FALSE(Contents.ok());
  EXPECT_EQ(Contents.status().code(), ErrorCode::Corruption);
  WriteAheadLog Wal;
  EXPECT_FALSE(Wal.open(Path).ok());
  EXPECT_FALSE(Wal.isOpen());

  // Correct magic, future version (on a full-length header so it is not
  // mistaken for a torn one): the dedicated wal_version refusal, not
  // Corruption — a newer binary's log must never be silently misread.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(WriteAheadLog::Magic, sizeof(WriteAheadLog::Magic));
    const char Future[] = {99, 0, 0, 0};
    Out.write(Future, sizeof(Future));
    const char BaseId[8] = {};
    Out.write(BaseId, sizeof(BaseId));
  }
  Contents = WriteAheadLog::replay(Path);
  ASSERT_FALSE(Contents.ok());
  EXPECT_EQ(Contents.status().code(), ErrorCode::WalVersion);
  std::remove(Path.c_str());
}

namespace {

/// Hand-writes a WAL file with an arbitrary header version (the live
/// WriteAheadLog always stamps the current one) so version-skew paths
/// can be exercised.
void writeWalFile(const std::string &Path, uint32_t Version,
                  const std::vector<std::string> &Lines) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(WriteAheadLog::Magic, sizeof(WriteAheadLog::Magic));
  auto U32 = [&Out](uint32_t V) {
    char Bytes[4];
    for (int I = 0; I != 4; ++I)
      Bytes[I] = static_cast<char>(V >> (8 * I));
    Out.write(Bytes, sizeof(Bytes));
  };
  auto U64 = [&Out](uint64_t V) {
    char Bytes[8];
    for (int I = 0; I != 8; ++I)
      Bytes[I] = static_cast<char>(V >> (8 * I));
    Out.write(Bytes, sizeof(Bytes));
  };
  U32(Version);
  U64(0); // base id
  for (const std::string &Line : Lines) {
    U32(static_cast<uint32_t>(Line.size()));
    U64(fnv1a64(reinterpret_cast<const uint8_t *>(Line.data()),
                Line.size()));
    Out.write(Line.data(), static_cast<std::streamsize>(Line.size()));
  }
}

} // namespace

TEST(WalTest, Version2FilesReplayAndUpgradeOnOpen) {
  // A pre-retraction (version 2) log must stay readable, and open()
  // must bump its header in place so any retraction record appended
  // later sits behind a version-3 header.
  std::string Path = tempPath("v2.wal");
  writeWalFile(Path, 2, {"var x", "cons s", "s <= x"});
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->FileVersion, 2u);
  ASSERT_EQ(Contents->Lines.size(), 3u);
  EXPECT_EQ(Contents->Lines[2], "s <= x");

  WriteAheadLog Wal;
  ASSERT_TRUE(Wal.open(Path, 0).ok());
  EXPECT_EQ(Wal.records(), 3u);
  ASSERT_TRUE(Wal.append(std::string(WalRetractPrefix) + "s <= x").ok());
  Wal.close();

  Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->FileVersion, WriteAheadLog::Version);
  ASSERT_EQ(Contents->Lines.size(), 4u);
  EXPECT_EQ(Contents->Lines[3], "!retract s <= x");
  std::remove(Path.c_str());
}

TEST(WalTest, Version2FileWithRetractRecordIsRefused) {
  // Only a version-3 writer emits `!retract` records; one inside a file
  // claiming version 2 means the header was downgraded or tampered
  // with. Replaying it as a constraint would corrupt the recovered
  // state, so the whole log is refused with the wal_version code a
  // version-2 scserved also uses when it meets a version-3 log.
  std::string Path = tempPath("v2retract.wal");
  writeWalFile(Path, 2,
               {"var x", "cons s", "s <= x",
                std::string(WalRetractPrefix) + "s <= x"});
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_FALSE(Contents.ok());
  EXPECT_EQ(Contents.status().code(), ErrorCode::WalVersion);
  EXPECT_EQ(std::string(errorCodeName(Contents.status().code())),
            "wal_version");
  WriteAheadLog Wal;
  EXPECT_FALSE(Wal.open(Path, 0).ok());
  std::remove(Path.c_str());
}

TEST(WalTest, TornHeaderReadsEmptyAndIsRewrittenOnOpen) {
  // A file shorter than the header is a crash during WAL creation: no
  // record can have been acknowledged, so it must read as empty (with
  // HeaderIntact=false), never as corruption — and open() must rewrite
  // the header and carry on.
  for (size_t Length : {size_t(0), size_t(3),
                        WriteAheadLog::HeaderSize - 1}) {
    std::string Path = tempPath("tornheader.wal");
    {
      std::ofstream Out(Path, std::ios::binary);
      std::string Partial(reinterpret_cast<const char *>(
                              WriteAheadLog::Magic),
                          std::min(Length, sizeof(WriteAheadLog::Magic)));
      Partial.resize(Length, '\0');
      Out.write(Partial.data(),
                static_cast<std::streamsize>(Partial.size()));
    }
    Expected<WalContents> Contents = WriteAheadLog::replay(Path);
    ASSERT_TRUE(Contents.ok()) << Length << ": " << Contents.status();
    EXPECT_FALSE(Contents->HeaderIntact) << Length;
    EXPECT_TRUE(Contents->Lines.empty()) << Length;
    EXPECT_EQ(Contents->ValidBytes, 0u) << Length;
    EXPECT_EQ(Contents->TornBytes, Length) << Length;

    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path, /*BaseId=*/7).ok()) << Length;
    EXPECT_EQ(Wal.sizeBytes(), WriteAheadLog::HeaderSize) << Length;
    ASSERT_TRUE(Wal.append("var X").ok()) << Length;
    Wal.close();
    Contents = WriteAheadLog::replay(Path);
    ASSERT_TRUE(Contents.ok()) << Length << ": " << Contents.status();
    EXPECT_TRUE(Contents->HeaderIntact) << Length;
    EXPECT_EQ(Contents->BaseId, 7u) << Length;
    EXPECT_EQ(Contents->Lines, (std::vector<std::string>{"var X"}))
        << Length;
    std::remove(Path.c_str());
  }
}

TEST(WalTest, BaseIdRoundTripsAndMismatchDiscardsStaleRecords) {
  std::string Path = tempPath("baseid.wal");
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path, /*BaseId=*/0xabcdef).ok());
    EXPECT_EQ(Wal.baseId(), 0xabcdefu);
    ASSERT_TRUE(Wal.append("var X").ok());
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->BaseId, 0xabcdefu);
  EXPECT_EQ(Contents->Lines, (std::vector<std::string>{"var X"}));

  // Reopening with the matching base id keeps the records...
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path, 0xabcdef).ok());
    EXPECT_EQ(Wal.records(), 1u);
  }
  // ...and with a different one (the snapshot moved on: the log is
  // stale) discards them and re-stamps the header.
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path, /*BaseId=*/42).ok());
    EXPECT_EQ(Wal.records(), 0u);
    EXPECT_EQ(Wal.sizeBytes(), WriteAheadLog::HeaderSize);
    EXPECT_EQ(Wal.baseId(), 42u);
  }
  Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->BaseId, 42u);
  EXPECT_TRUE(Contents->Lines.empty());
  std::remove(Path.c_str());
}

TEST(WalTest, ResetStampsTheNewBaseId) {
  // The checkpoint path: reset(NewBaseId) empties the log and re-stamps
  // it with the new snapshot's checksum, durably.
  std::string Path = tempPath("resetbase.wal");
  {
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(Path, 1).ok());
    ASSERT_TRUE(Wal.append("var X").ok());
    ASSERT_TRUE(Wal.append("var Y").ok());
    ASSERT_TRUE(Wal.reset(/*NewBaseId=*/2).ok());
    EXPECT_EQ(Wal.baseId(), 2u);
    EXPECT_EQ(Wal.records(), 0u);
    EXPECT_EQ(Wal.sizeBytes(), WriteAheadLog::HeaderSize);
    ASSERT_TRUE(Wal.append("var Z").ok());
  }
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->BaseId, 2u);
  EXPECT_EQ(Contents->Lines, (std::vector<std::string>{"var Z"}));
  std::remove(Path.c_str());
}

TEST(WalTest, AppendFailureLeavesNoTornRecord) {
  FailPointGuard Guard;
  std::string Path = tempPath("failpoint.wal");
  WriteAheadLog Wal;
  ASSERT_TRUE(Wal.open(Path).ok());
  ASSERT_TRUE(Wal.append("kept").ok());
  uint64_t CleanSize = Wal.sizeBytes();

  // Fault before any bytes: nothing written.
  ASSERT_TRUE(FailPoint::armSpec("wal.append.pre=error").ok());
  Status Pre = Wal.append("lost");
  EXPECT_EQ(Pre.code(), ErrorCode::IoError);
  EXPECT_NE(Pre.message().find("wal.append.pre"), std::string::npos);
  EXPECT_EQ(Wal.sizeBytes(), CleanSize);
  EXPECT_EQ(Wal.records(), 1u);

  // Fault mid-record: append truncates its own half-written bytes back.
  ASSERT_TRUE(FailPoint::armSpec("wal.append.mid=error").ok());
  EXPECT_EQ(Wal.append("lost too").code(), ErrorCode::IoError);
  EXPECT_EQ(Wal.sizeBytes(), CleanSize);
  EXPECT_EQ(Wal.records(), 1u);

  // Both one-shot failpoints have fired and disarmed: appends recover.
  EXPECT_EQ(FailPoint::armedCount(), 0u);
  ASSERT_TRUE(Wal.append("kept two").ok());
  Wal.close();
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  EXPECT_EQ(Contents->Lines,
            (std::vector<std::string>{"kept", "kept two"}));
  EXPECT_EQ(Contents->TornBytes, 0u);
  std::remove(Path.c_str());
}

// The replication primary replays its live WAL to build a `replicate`
// tail while the writer lane keeps appending. replay() must therefore be
// safe against a concurrently growing file: every recovered prefix
// consists only of whole, checksum-verified records — a reader may see
// fewer lines than have been appended (the tail is still in flight) but
// never a torn or corrupted one.
TEST(WalTest, ConcurrentTailNeverSeesTornRecords) {
  std::string Path = tempPath("concurrent_tail.wal");
  constexpr unsigned NumRecords = 240;
  // Varied lengths so record boundaries land at ever-different offsets;
  // payload I is "rec <I>:<padding>".
  auto LineAt = [](unsigned I) {
    return "rec " + std::to_string(I) + ":" +
           std::string(1 + (I * 37) % 113, 'p');
  };

  std::atomic<unsigned> Appended{0};
  WriteAheadLog Wal;
  ASSERT_TRUE(Wal.open(Path, /*BaseId=*/0x1dea).ok());

  std::thread Writer([&] {
    for (unsigned I = 0; I != NumRecords; ++I) {
      ASSERT_TRUE(Wal.append(LineAt(I)).ok());
      Appended.store(I + 1, std::memory_order_release);
    }
  });

  unsigned Replays = 0;
  while (Appended.load(std::memory_order_acquire) < NumRecords) {
    Expected<WalContents> Mid = WriteAheadLog::replay(Path);
    ASSERT_TRUE(Mid.ok()) << Mid.status();
    EXPECT_TRUE(Mid->HeaderIntact);
    EXPECT_EQ(Mid->BaseId, 0x1deau);
    // A clean prefix: every line recovered mid-append is exactly the
    // line appended at that index. (TornBytes may be nonzero while the
    // writer is between append()'s two writes — that in-flight tail must
    // simply not surface as a line.)
    ASSERT_LE(Mid->Lines.size(), static_cast<size_t>(NumRecords));
    for (size_t I = 0; I != Mid->Lines.size(); ++I)
      ASSERT_EQ(Mid->Lines[I], LineAt(static_cast<unsigned>(I)));
    ++Replays;
  }
  Writer.join();

  // Quiesced: the final replay sees all records and no torn tail.
  Expected<WalContents> Final = WriteAheadLog::replay(Path);
  ASSERT_TRUE(Final.ok()) << Final.status();
  ASSERT_EQ(Final->Lines.size(), static_cast<size_t>(NumRecords));
  EXPECT_EQ(Final->TornBytes, 0u);
  EXPECT_GT(Replays, 0u);
  Wal.close();
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Resource budgets and transactional rollback
//===----------------------------------------------------------------------===//

TEST(BudgetTest, EdgeBudgetAbortRollsBackBitIdentical) {
  QueryEngine Engine(makeBundle(
      chainText(64), makeConfig(GraphForm::Inductive, CycleElim::Online)));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  ASSERT_TRUE(Engine.rollbackArmed());

  // Budgets are part of the serialized options, so the pre-batch
  // reference bytes are captured with them already armed.
  Engine.solver().setBudgets(/*DeadlineMs=*/0, /*MaxEdgeBudget=*/1,
                             /*MaxMemBytes=*/0);
  std::vector<uint8_t> PreBytes = serialized(Engine.solver());

  // Flooding s through the 64-var chain breaches an edge budget of 1.
  Status St = Engine.addConstraint("s <= C0");
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), ErrorCode::BudgetExceeded);
  EXPECT_NE(St.message().find("edge_budget"), std::string::npos);

  // The graph is bit-identical to the pre-batch state — and, checked
  // independently of the snapshot machinery, structurally sound with
  // the pre-batch solutions per the reference oracle.
  EXPECT_EQ(serialized(Engine.solver()), PreBytes);
  EXPECT_TRUE(Engine.solver().verifyGraphInvariants());
  SolverBundle Pristine = makeBundle(
      chainText(64), makeConfig(GraphForm::Inductive, CycleElim::Online));
  EXPECT_EQ(Engine.solver().referenceLeastSolutions(),
            Pristine.Solver->referenceLeastSolutions());
  EXPECT_FALSE(Engine.solver().stats().Aborted);
  EXPECT_EQ(Engine.counters().BudgetAborts, 1u);
  EXPECT_EQ(Engine.counters().Rollbacks, 1u);
  EXPECT_EQ(Engine.counters().Additions, 0u);
  EXPECT_TRUE(Engine.journal().empty());

  // ...and the engine keeps serving queries.
  VarId C63 = Engine.varOf("C63");
  ASSERT_NE(C63, QueryEngine::NotFound);
  EXPECT_TRUE(Engine.pts(C63).empty());

  // Rollback restored the LIVE budgets, not the (unbudgeted) base ones:
  // the same offending line aborts again.
  EXPECT_EQ(Engine.addConstraint("s <= C0").code(),
            ErrorCode::BudgetExceeded);
  EXPECT_EQ(Engine.counters().BudgetAborts, 2u);
  EXPECT_EQ(serialized(Engine.solver()), PreBytes);

  // Disarming the budget lets the identical line through.
  Engine.solver().setBudgets(0, 0, 0);
  ASSERT_TRUE(Engine.addConstraint("s <= C0").ok());
  EXPECT_EQ(Engine.pts(C63), (std::vector<std::string>{"s"}));
  EXPECT_EQ(Engine.counters().Additions, 1u);
  EXPECT_EQ(Engine.journal(), (std::vector<std::string>{"s <= C0"}));
}

TEST(BudgetTest, GenerousBudgetsDoNotFireOnSmallAdds) {
  QueryEngine Engine(makeBundle(
      chainText(8), makeConfig(GraphForm::Inductive, CycleElim::Online)));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  Engine.solver().setBudgets(/*DeadlineMs=*/60000, /*MaxEdgeBudget=*/100000,
                             /*MaxMemBytes=*/0);
  Status Add = Engine.addConstraint("s <= C0");
  ASSERT_TRUE(Add.ok()) << Add;
  EXPECT_EQ(Engine.counters().BudgetAborts, 0u);
  EXPECT_EQ(Engine.pts(Engine.varOf("C7")),
            (std::vector<std::string>{"s"}));
}

TEST(BudgetTest, InjectedAbortViaFailpointRollsBack) {
  FailPointGuard Guard;
  QueryEngine Engine(makeBundle(
      chainText(16), makeConfig(GraphForm::Inductive, CycleElim::Online)));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  std::vector<uint8_t> PreBytes = serialized(Engine.solver());

  ASSERT_TRUE(FailPoint::armSpec("solver.budget=error").ok());
  Status St = Engine.addConstraint("s <= C0");
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), ErrorCode::BudgetExceeded);
  EXPECT_NE(St.message().find("injected"), std::string::npos);
  EXPECT_EQ(serialized(Engine.solver()), PreBytes);

  // One-shot: the failpoint disarmed itself, so the retry succeeds.
  EXPECT_EQ(FailPoint::armedCount(), 0u);
  ASSERT_TRUE(Engine.addConstraint("s <= C0").ok());
  EXPECT_EQ(Engine.pts(Engine.varOf("C15")),
            (std::vector<std::string>{"s"}));
}

TEST(BudgetTest, CheckpointBaseMovesTheRollbackTarget) {
  QueryEngine Engine(makeBundle(
      chainText(32), makeConfig(GraphForm::Inductive, CycleElim::Online)));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();

  ASSERT_TRUE(Engine.addConstraint("cons t").ok());
  ASSERT_TRUE(Engine.addConstraint("t <= C16").ok());
  EXPECT_EQ(Engine.journal().size(), 2u);

  ASSERT_TRUE(Engine.checkpointBase().ok());
  EXPECT_TRUE(Engine.journal().empty());

  // An abort after the checkpoint rolls back to the checkpoint, keeping
  // the pre-checkpoint additions. (Budgets are serialized options, so the
  // reference bytes are captured after arming them.)
  Engine.solver().setBudgets(0, 1, 0);
  std::vector<uint8_t> CheckpointBytes = serialized(Engine.solver());
  EXPECT_EQ(Engine.addConstraint("s <= C0").code(),
            ErrorCode::BudgetExceeded);
  EXPECT_EQ(serialized(Engine.solver()), CheckpointBytes);
  EXPECT_EQ(Engine.pts(Engine.varOf("C31")),
            (std::vector<std::string>{"t"}));
}

TEST(BudgetTest, JournaledLinesSurviveRollback) {
  // Accepted-but-not-checkpointed lines must be replayed into the rebuilt
  // solver: rollback undoes only the offending batch, never earlier acks.
  QueryEngine Engine(makeBundle(
      chainText(32), makeConfig(GraphForm::Inductive, CycleElim::Online)));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();

  Engine.solver().setBudgets(0, 1000, 0); // Roomy: accepts small adds.
  ASSERT_TRUE(Engine.addConstraint("cons t").ok());
  ASSERT_TRUE(Engine.addConstraint("t <= C16").ok());

  Engine.solver().setBudgets(0, 1, 0);
  std::vector<uint8_t> AckedBytes = serialized(Engine.solver());
  EXPECT_EQ(Engine.addConstraint("s <= C0").code(),
            ErrorCode::BudgetExceeded);
  EXPECT_EQ(serialized(Engine.solver()), AckedBytes);
  EXPECT_EQ(Engine.journal(),
            (std::vector<std::string>{"cons t", "t <= C16"}));
  EXPECT_EQ(Engine.pts(Engine.varOf("C31")),
            (std::vector<std::string>{"t"}));
}

TEST(BudgetTest, CheckConstraintIsANonMutatingDryRun) {
  // checkConstraint vets the exact validations addConstraint applies —
  // the server uses it to keep unreplayable lines out of the WAL — and
  // must not change the graph or the declaration tables.
  QueryEngine Engine(makeBundle(
      chainText(8), makeConfig(GraphForm::Inductive, CycleElim::Online)));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  std::vector<uint8_t> PreBytes = serialized(Engine.solver());

  EXPECT_EQ(Engine.checkConstraint("nonsense !!").code(),
            ErrorCode::ParseError);
  EXPECT_EQ(Engine.checkConstraint("undeclared <= C0").code(),
            ErrorCode::ParseError);
  EXPECT_EQ(Engine.checkConstraint("var C0").code(), ErrorCode::ParseError);
  EXPECT_EQ(Engine.checkConstraint("cons s + +").code(),
            ErrorCode::ParseError); // Redeclared with a new signature.
  EXPECT_TRUE(Engine.checkConstraint("var P Q").ok());
  EXPECT_TRUE(Engine.checkConstraint("cons t -").ok());
  EXPECT_TRUE(Engine.checkConstraint("s <= C0").ok());
  EXPECT_TRUE(Engine.checkConstraint("# comment").ok());

  // None of the checks (passing or failing) touched anything: the graph
  // is bit-identical and the vetted declarations are still fresh.
  EXPECT_EQ(serialized(Engine.solver()), PreBytes);
  ASSERT_TRUE(Engine.addConstraint("var P Q").ok());
  ASSERT_TRUE(Engine.addConstraint("cons t -").ok());

  // A line that passed checkConstraint applies cleanly.
  ASSERT_TRUE(Engine.addConstraint("s <= C0").ok());
  EXPECT_EQ(Engine.pts(Engine.varOf("C7")), (std::vector<std::string>{"s"}));
}

TEST(BudgetTest, UnserializableSolverReportsUnrecoverableBreach) {
  // A solver that aborted during its initial solve cannot be serialized,
  // so the engine comes up with rollback disarmed; a later breach is then
  // an Internal error, not a silent half-propagated graph.
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Options.MaxWork = 1;
  QueryEngine Engine(makeBundle(chainText(16) + "s <= C0\n", Options));
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  EXPECT_FALSE(Engine.rollbackArmed());
  EXPECT_TRUE(Engine.solver().stats().Aborted);

  Status St = Engine.addConstraint("C0 <= C1");
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), ErrorCode::Internal);
  EXPECT_NE(St.message().find("could not be rolled back"), std::string::npos);
  EXPECT_EQ(Engine.counters().BudgetAborts, 1u);
  EXPECT_EQ(Engine.counters().Rollbacks, 0u);
}

//===----------------------------------------------------------------------===//
// Warm recovery
//===----------------------------------------------------------------------===//

TEST(WarmRecoveryTest, SnapshotPlusReplayEqualsUninterrupted) {
  // The recovery invariant behind scserved: rebuilding from a snapshot
  // and replaying the WAL's lines yields a solver bit-identical to one
  // that never crashed. Both sides feed the same lines through
  // addConstraint; the only difference is the snapshot round trip.
  const std::vector<std::string> Lines = {
      "cons t", "var P", "t <= C5", "C5 <= P", "s <= C2"};
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  QueryEngine Uninterrupted(makeBundle(chainText(16), Options));
  ASSERT_TRUE(Uninterrupted.valid()) << Uninterrupted.initError();
  std::vector<uint8_t> BaseBytes = serialized(Uninterrupted.solver());

  // "Crash": lose the live engine, keep only BaseBytes + the lines.
  SolverBundle Recovered;
  Status Load =
      GraphSnapshot::deserialize(BaseBytes.data(), BaseBytes.size(), Recovered);
  ASSERT_TRUE(Load.ok()) << Load;
  QueryEngine Warm(std::move(Recovered));
  ASSERT_TRUE(Warm.valid()) << Warm.initError();

  for (const std::string &Line : Lines) {
    ASSERT_TRUE(Uninterrupted.addConstraint(Line).ok()) << Line;
    ASSERT_TRUE(Warm.addConstraint(Line).ok()) << Line;
  }
  EXPECT_EQ(serialized(Warm.solver()), serialized(Uninterrupted.solver()));
  EXPECT_EQ(Warm.pts(Warm.varOf("P")),
            Uninterrupted.pts(Uninterrupted.varOf("P")));
}

TEST(WarmRecoveryTest, WalBackedRecoveryEndToEnd) {
  // Same invariant, through the real durability pieces: an atomic
  // snapshot file plus a WAL on disk, recover from those alone.
  std::string SnapPath = tempPath("recovery.snap");
  std::string WalPath = tempPath("recovery.wal");
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  const std::vector<std::string> Lines = {"cons t", "t <= C3", "s <= C0"};
  {
    QueryEngine Engine(makeBundle(chainText(8), Options));
    ASSERT_TRUE(Engine.valid()) << Engine.initError();
    ASSERT_TRUE(GraphSnapshot::save(Engine.solver(), SnapPath).ok());
    WriteAheadLog Wal;
    ASSERT_TRUE(Wal.open(WalPath).ok());
    for (const std::string &Line : Lines) {
      ASSERT_TRUE(Wal.append(Line).ok());
      ASSERT_TRUE(Engine.addConstraint(Line).ok());
    }
    // Engine dies here with both files behind it.
  }

  SolverBundle Bundle;
  Status Load = GraphSnapshot::load(SnapPath, Bundle);
  ASSERT_TRUE(Load.ok()) << Load;
  QueryEngine Recovered(std::move(Bundle));
  ASSERT_TRUE(Recovered.valid()) << Recovered.initError();
  Expected<WalContents> Contents = WriteAheadLog::replay(WalPath);
  ASSERT_TRUE(Contents.ok()) << Contents.status();
  ASSERT_EQ(Contents->Lines, Lines);
  for (const std::string &Line : Contents->Lines)
    ASSERT_TRUE(Recovered.addConstraint(Line).ok()) << Line;

  // The recovered graph answers exactly like a fresh solve of the full
  // constraint sequence.
  QueryEngine Fresh(makeBundle(chainText(8), Options));
  for (const std::string &Line : Lines)
    ASSERT_TRUE(Fresh.addConstraint(Line).ok());
  EXPECT_EQ(serialized(Recovered.solver()), serialized(Fresh.solver()));
  EXPECT_EQ(Recovered.pts(Recovered.varOf("C7")),
            (std::vector<std::string>{"s", "t"}));
  std::remove(SnapPath.c_str());
  std::remove(WalPath.c_str());
}

//===----------------------------------------------------------------------===//
// Snapshot save/load under injected faults
//===----------------------------------------------------------------------===//

TEST(SnapshotFaultTest, FailedAtomicSaveLeavesOldSnapshotIntact) {
  FailPointGuard Guard;
  std::string Path = tempPath("atomic.snap");
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  SolverBundle First = makeBundle(chainText(4), Options);
  ASSERT_TRUE(GraphSnapshot::save(*First.Solver, Path).ok());
  std::vector<uint8_t> Good;
  std::string Error;
  ASSERT_TRUE(readFileBytes(Path, Good, &Error)) << Error;

  // A fault anywhere in the write path must leave the old file untouched
  // and no stray temp file behind.
  for (const char *Spec :
       {"atomic.write=error", "atomic.write=short",
        "atomic.before_fsync=error", "atomic.before_rename=error"}) {
    ASSERT_TRUE(FailPoint::armSpec(Spec).ok()) << Spec;
    SolverBundle Second = makeBundle(chainText(6), Options);
    Status St = GraphSnapshot::save(*Second.Solver, Path);
    EXPECT_FALSE(St.ok()) << Spec;
    EXPECT_EQ(St.code(), ErrorCode::IoError) << Spec;
    std::vector<uint8_t> Now;
    ASSERT_TRUE(readFileBytes(Path, Now, &Error)) << Error;
    EXPECT_EQ(Now, Good) << Spec;
    std::ifstream Tmp(Path + ".tmp");
    EXPECT_FALSE(Tmp.good()) << Spec << " left a stray temp file";
  }

  // And the old snapshot still loads.
  SolverBundle Bundle;
  Status Load = GraphSnapshot::load(Path, Bundle);
  ASSERT_TRUE(Load.ok()) << Load;
  std::remove(Path.c_str());
}

TEST(SnapshotFaultTest, LoadFailpointInjectsIoError) {
  FailPointGuard Guard;
  std::string Path = tempPath("loadfault.snap");
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  SolverBundle Saved = makeBundle(chainText(4), Options);
  ASSERT_TRUE(GraphSnapshot::save(*Saved.Solver, Path).ok());

  ASSERT_TRUE(FailPoint::armSpec("snapshot.load=error").ok());
  SolverBundle Bundle;
  Status Load = GraphSnapshot::load(Path, Bundle);
  ASSERT_FALSE(Load.ok());
  EXPECT_EQ(Load.code(), ErrorCode::IoError);
  EXPECT_EQ(Bundle.Solver, nullptr);

  // One-shot: the retry succeeds.
  ASSERT_TRUE(GraphSnapshot::load(Path, Bundle).ok());
  ASSERT_NE(Bundle.Solver, nullptr);
  std::remove(Path.c_str());
}
