file(REMOVE_RECURSE
  "CMakeFiles/table3_online.dir/table3_online.cpp.o"
  "CMakeFiles/table3_online.dir/table3_online.cpp.o.d"
  "table3_online"
  "table3_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
