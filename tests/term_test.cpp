//===- tests/term_test.cpp - Constructor/term table unit tests -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/Constructor.h"
#include "setcon/Term.h"

#include <gtest/gtest.h>

using namespace poce;

TEST(ConstructorTableTest, RegisterAndLookup) {
  ConstructorTable Table;
  ConsId Ref = Table.getOrCreate(
      "ref", {Variance::Covariant, Variance::Covariant,
              Variance::Contravariant});
  EXPECT_EQ(Table.lookup("ref"), Ref);
  EXPECT_EQ(Table.lookup("nope"), ConstructorTable::NotFound);
  EXPECT_EQ(Table.signature(Ref).arity(), 3u);
  EXPECT_EQ(Table.signature(Ref).ArgVariance[2], Variance::Contravariant);
  EXPECT_EQ(Table.signature(Ref).Name, "ref");
}

TEST(ConstructorTableTest, ReRegisterSameSignatureIsIdempotent) {
  ConstructorTable Table;
  ConsId A = Table.getOrCreate("c", {Variance::Covariant});
  ConsId B = Table.getOrCreate("c", {Variance::Covariant});
  EXPECT_EQ(A, B);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(ConstructorTableTest, NullaryConstructors) {
  ConstructorTable Table;
  ConsId A = Table.getOrCreate("a", {});
  ConsId B = Table.getOrCreate("b", {});
  EXPECT_NE(A, B);
  EXPECT_EQ(Table.signature(A).arity(), 0u);
}

TEST(TermTableTest, ConstantsAreFixedIds) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  EXPECT_EQ(Terms.zero(), 0u);
  EXPECT_EQ(Terms.one(), 1u);
  EXPECT_EQ(Terms.kind(Terms.zero()), ExprKind::Zero);
  EXPECT_EQ(Terms.kind(Terms.one()), ExprKind::One);
}

TEST(TermTableTest, VarExprsAreCached) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ExprId V0 = Terms.var(0);
  ExprId V1 = Terms.var(1);
  EXPECT_NE(V0, V1);
  EXPECT_EQ(Terms.var(0), V0);
  EXPECT_EQ(Terms.kind(V0), ExprKind::Var);
  EXPECT_EQ(Terms.varOf(V1), 1u);
}

TEST(TermTableTest, HashConsing) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConsId C = Constructors.getOrCreate(
      "c", {Variance::Covariant, Variance::Covariant});
  ExprId V0 = Terms.var(0);
  ExprId V1 = Terms.var(1);
  ExprId A = Terms.cons(C, {V0, V1});
  ExprId B = Terms.cons(C, {V0, V1});
  ExprId D = Terms.cons(C, {V1, V0});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, D);
  EXPECT_EQ(Terms.consOf(A), C);
  EXPECT_EQ(Terms.numArgs(A), 2u);
  EXPECT_EQ(Terms.argsOf(A)[0], V0);
  EXPECT_EQ(Terms.argsOf(A)[1], V1);
}

TEST(TermTableTest, NestedTermsAndDifferentConstructors) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConsId C = Constructors.getOrCreate("c", {Variance::Covariant});
  ConsId D = Constructors.getOrCreate("d", {Variance::Covariant});
  ExprId Inner = Terms.cons(C, {Terms.zero()});
  ExprId OuterC = Terms.cons(C, {Inner});
  ExprId OuterD = Terms.cons(D, {Inner});
  EXPECT_NE(OuterC, OuterD);
  EXPECT_EQ(Terms.cons(C, {Inner}), OuterC);
  EXPECT_TRUE(Terms.isConstructed(OuterC));
  EXPECT_FALSE(Terms.isConstructed(Terms.var(3)));
  EXPECT_TRUE(Terms.isConstructed(Terms.zero()));
}

TEST(TermTableTest, ManyTermsSurviveRehash) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConsId C = Constructors.getOrCreate("c", {Variance::Covariant});
  std::vector<ExprId> Ids;
  for (uint32_t I = 0; I != 2000; ++I)
    Ids.push_back(Terms.cons(C, {Terms.var(I)}));
  for (uint32_t I = 0; I != 2000; ++I)
    EXPECT_EQ(Terms.cons(C, {Terms.var(I)}), Ids[I]);
}

TEST(TermTableTest, RenderingWithVariance) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConsId Ref = Constructors.getOrCreate(
      "ref", {Variance::Covariant, Variance::Contravariant});
  ExprId Term = Terms.cons(Ref, {Terms.var(0), Terms.one()});
  std::string Str =
      Terms.str(Term, [](VarId Var) { return "X" + std::to_string(Var); });
  EXPECT_EQ(Str, "ref(X0, ~1)");
  EXPECT_EQ(Terms.str(Terms.zero(), nullptr), "0");
}
