//===- cfa/ClosureAnalysis.h - 0CFA via inclusion constraints ---*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monovariant closure analysis (0CFA) formulated with the same inclusion
/// constraint solver as the points-to case study — the paper's future-work
/// direction. Every term t gets a set variable X_t of the closures it may
/// evaluate to; a lambda L = fun x -> b contributes the source term
///
///     fun(label_L, ~V_x, X_b)
///
/// (covariant label, contravariant parameter, covariant result), and an
/// application f a adds X_f <= fun(1, X_a, ~? ...), i.e. the sink
/// fun(1, X_a, R): by contravariance the argument set flows into the
/// parameter variable of every closure reaching f, and each closure's body
/// set flows into the application's result. Recursive bindings create the
/// cyclic constraints that make online cycle elimination matter here too.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_CFA_CLOSUREANALYSIS_H
#define POCE_CFA_CLOSUREANALYSIS_H

#include "cfa/Lambda.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "setcon/SolverOptions.h"
#include "setcon/SolverStats.h"

#include <map>
#include <string>
#include <vector>

namespace poce {
namespace cfa {

/// Result of one closure-analysis run.
struct CFAResult {
  /// Call site id -> sorted lambda labels that may be applied there.
  std::map<uint32_t, std::vector<uint32_t>> CallTargets;
  /// Unbound variable names encountered (treated as empty sets).
  std::vector<std::string> UnboundVariables;
  SolverStats Stats;
  uint64_t FinalEdges = 0;
  double AnalysisSeconds = 0;

  std::vector<uint32_t> targetsOf(uint32_t AppSite) const {
    auto It = CallTargets.find(AppSite);
    return It == CallTargets.end() ? std::vector<uint32_t>() : It->second;
  }
};

/// Runs 0CFA over \p Program under \p Options. \p Constructors is shared
/// across runs for stable ids; \p WitnessOracle must be supplied iff
/// Options.Elim is Oracle.
CFAResult runClosureAnalysis(const LambdaProgram &Program,
                             ConstructorTable &Constructors,
                             const SolverOptions &Options,
                             const Oracle *WitnessOracle = nullptr);

/// Generator adapter for buildOracle().
GeneratorFn makeGenerator(const LambdaProgram &Program);

/// Deterministic generator of synthetic lambda programs for the
/// closure-analysis bench: \p NumGroups chains of self- and mutually
/// recursive higher-order combinators, producing the cyclic constraints
/// the paper's future work targets.
std::string generateLambdaProgram(uint32_t NumGroups, uint64_t Seed);

} // namespace cfa
} // namespace poce

#endif // POCE_CFA_CLOSUREANALYSIS_H
