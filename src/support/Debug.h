//===- support/Debug.h - Debug output macro ---------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// POCE_DEBUG(stmt) executes stmt only when debug output is enabled for the
/// translation unit's POCE_DEBUG_TYPE (set before including this header).
/// Enable at runtime with the environment variable POCE_DEBUG, either
/// "all" or a comma-separated list of debug types. Compiled out entirely
/// in NDEBUG builds.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_DEBUG_H
#define POCE_SUPPORT_DEBUG_H

namespace poce {

/// Returns true if debug output for \p Type is enabled via the POCE_DEBUG
/// environment variable.
bool isDebugTypeEnabled(const char *Type);

} // namespace poce

// Translation units using POCE_DEBUG must #define POCE_DEBUG_TYPE before
// the first use (the macro expands it at the use site).
#ifdef NDEBUG
#define POCE_DEBUG(stmt)                                                       \
  do {                                                                         \
  } while (false)
#else
#define POCE_DEBUG(stmt)                                                       \
  do {                                                                         \
    if (::poce::isDebugTypeEnabled(POCE_DEBUG_TYPE)) {                         \
      stmt;                                                                    \
    }                                                                          \
  } while (false)
#endif

#endif // POCE_SUPPORT_DEBUG_H
