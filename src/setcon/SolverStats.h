//===- setcon/SolverStats.h - Per-solve measurements ------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters gathered during one constraint solve. These are the quantities
/// the paper's Tables 2 and 3 report: edges in the final graph, total work
/// (edge additions including redundant ones), and the number of variables
/// eliminated by cycle detection, plus supporting detail used by the
/// analysis benches.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_SOLVERSTATS_H
#define POCE_SETCON_SOLVERSTATS_H

#include <array>
#include <cstdint>

namespace poce {

class MetricsRegistry;

/// Measurements of a single solve.
struct SolverStats {
  /// Variables ever created (including ones later collapsed away).
  uint64_t VarsCreated = 0;
  /// Fresh-variable requests answered by the oracle with an existing
  /// witness instead of a new variable.
  uint64_t OracleSubstitutions = 0;

  /// Edge additions performed directly by input constraints (successful
  /// only): the size of the initial graph.
  uint64_t InitialEdges = 0;
  /// Distinct constructed source terms inserted.
  uint64_t DistinctSources = 0;
  /// Distinct constructed sink terms inserted.
  uint64_t DistinctSinks = 0;

  /// Total edge additions, including redundant re-additions along
  /// alternate paths — the paper's "Work" column.
  uint64_t Work = 0;
  /// Additions that found the edge already present.
  uint64_t RedundantAdds = 0;
  /// Additions that degenerated to X <= X after representative lookup.
  uint64_t SelfEdges = 0;

  /// Variables eliminated by collapsing detected cycles.
  uint64_t VarsEliminated = 0;
  /// Number of collapse events (cycles found).
  uint64_t CyclesCollapsed = 0;
  /// Nodes visited across all online chain searches.
  uint64_t CycleSearchSteps = 0;
  /// Number of chain searches started.
  uint64_t CycleSearches = 0;
  /// Offline SCC passes run under CycleElim::Periodic.
  uint64_t PeriodicPasses = 0;

  /// Offline preprocessing (SolverOptions::Preprocess == Offline):
  /// variables collapsed by the pre-closure SCC condensation — the
  /// "cycle variables caught offline" measure, directly comparable to
  /// VarsEliminated (caught online) and the Oracle's eliminable bound.
  /// Variables merged by the HVN labeling beyond these are *not* counted
  /// here (they are equivalent, not necessarily cyclic); the total merge
  /// count is visible as the drop in live variables.
  uint64_t OfflineCollapsedVars = 0;
  /// Distinct HVN pointer-equivalence labels over the condensed
  /// components (0 = the pass never ran).
  uint64_t HVNLabels = 0;
  /// Nontrivial (size >= 2) SCCs found by the offline condensation.
  uint64_t OfflineSCCs = 0;

  /// Structurally mismatched constraints skipped (or collected).
  uint64_t Mismatches = 0;
  /// Constraints processed from the worklist.
  uint64_t ConstraintsProcessed = 0;

  /// 64-bit words visited by word-level set unions in the least-solution
  /// pass (the bitvector backend's cost measure; 0 for standard form,
  /// whose closed graph needs no union pass).
  uint64_t LSUnionWords = 0;
  /// Standard-form difference propagation: batched source-set deliveries
  /// pushed along successor edges (one per (flush, variable-successor)
  /// pair). 0 in inductive form or with SolverOptions::DiffProp off.
  uint64_t DeltaPropagations = 0;
  /// Batched deliveries whose word-level union added no new source — the
  /// redundant work the unionWith changed-flag prunes down to a merge
  /// instead of per-element hash probes.
  uint64_t PropagationsPruned = 0;

  /// Wave closure (SolverOptions::Closure == ClosureMode::Wave): number of
  /// topologically ordered propagation sweeps run to reach the fixpoint.
  /// 0 in worklist mode and whenever no source deltas were pending.
  uint64_t WavePasses = 0;
  /// Topological levels walked across all wave sweeps (a level revisited
  /// after a fallback counts again) — the wavefront depth measure.
  uint64_t LevelsPropagated = 0;
  /// Deliveries that landed at or before the sweep cursor — sources pushed
  /// against the cached topological order by a cycle that formed after the
  /// order was computed (or inside a never-collapsed SCC). Each one forces
  /// an extra flush of an already-visited variable within the sweep.
  uint64_t WaveFallbacks = 0;

  /// Constraint retractions performed (ConstraintSolver::retract calls
  /// that found and removed a base root).
  uint64_t Retractions = 0;
  /// Variables reset and rebuilt by retraction cone recomputes (class
  /// members counted individually) — the locality measure retraction is
  /// judged by against a full re-solve.
  uint64_t ConeVarsRecomputed = 0;
  /// Collapsed-cycle classes dissolved back into singletons because a
  /// retraction removed an edge their witness cycle needed (offline
  /// HVN-merged classes always split: they have no online witness cycle).
  uint64_t CollapsesSplit = 0;

  /// Why an aborted solve stopped. None while Aborted is false.
  enum class AbortReason : uint8_t {
    None = 0,
    MaxWork,    ///< Cumulative SolverOptions::MaxWork bound.
    Deadline,   ///< SolverOptions::DeadlineMs wall-clock budget.
    EdgeBudget, ///< SolverOptions::MaxEdgeBudget per-batch bound.
    MemBudget,  ///< SolverOptions::MaxMemBytes resident-set bound.
    Injected,   ///< Forced by the `solver.budget` failpoint.
  };

  static const char *abortReasonName(AbortReason Reason) {
    switch (Reason) {
    case AbortReason::None:
      return "none";
    case AbortReason::MaxWork:
      return "max_work";
    case AbortReason::Deadline:
      return "deadline_ms";
    case AbortReason::EdgeBudget:
      return "edge_budget";
    case AbortReason::MemBudget:
      return "mem_budget";
    case AbortReason::Injected:
      return "injected";
    }
    return "none";
  }

  /// True if the solve hit a work/time/memory budget and stopped early.
  bool Aborted = false;
  /// Which budget stopped it.
  AbortReason Abort = AbortReason::None;

  /// Work minus redundant and self additions: distinct edges ever added.
  uint64_t distinctAdds() const { return Work - RedundantAdds - SelfEdges; }

  /// Accumulates \p RHS into this struct: every counter is summed and
  /// Aborted is ORed. This is both the batch-suite aggregation and the
  /// primitive the parallel least-solution pass uses to merge per-thread
  /// deltas — all counters are sums, so the merged totals are independent
  /// of how work was partitioned across threads.
  SolverStats &operator+=(const SolverStats &RHS) {
    VarsCreated += RHS.VarsCreated;
    OracleSubstitutions += RHS.OracleSubstitutions;
    InitialEdges += RHS.InitialEdges;
    DistinctSources += RHS.DistinctSources;
    DistinctSinks += RHS.DistinctSinks;
    Work += RHS.Work;
    RedundantAdds += RHS.RedundantAdds;
    SelfEdges += RHS.SelfEdges;
    VarsEliminated += RHS.VarsEliminated;
    CyclesCollapsed += RHS.CyclesCollapsed;
    CycleSearchSteps += RHS.CycleSearchSteps;
    CycleSearches += RHS.CycleSearches;
    PeriodicPasses += RHS.PeriodicPasses;
    OfflineCollapsedVars += RHS.OfflineCollapsedVars;
    HVNLabels += RHS.HVNLabels;
    OfflineSCCs += RHS.OfflineSCCs;
    Mismatches += RHS.Mismatches;
    ConstraintsProcessed += RHS.ConstraintsProcessed;
    LSUnionWords += RHS.LSUnionWords;
    DeltaPropagations += RHS.DeltaPropagations;
    PropagationsPruned += RHS.PropagationsPruned;
    WavePasses += RHS.WavePasses;
    LevelsPropagated += RHS.LevelsPropagated;
    WaveFallbacks += RHS.WaveFallbacks;
    Retractions += RHS.Retractions;
    ConeVarsRecomputed += RHS.ConeVarsRecomputed;
    CollapsesSplit += RHS.CollapsesSplit;
    Aborted = Aborted || RHS.Aborted;
    if (Abort == AbortReason::None)
      Abort = RHS.Abort;
    return *this;
  }

  /// One labeled measurement of the bitvector hot paths.
  struct NamedCounter {
    const char *Label; ///< Short label ("DeltaProps").
    const char *Key;   ///< snake_case key for JSON emitters.
    uint64_t Value;
  };

  /// The bitvector hot-path counters in a fixed order — the single source
  /// for the bench tables (fig7-fig9) and the micro_solver JSON, which
  /// previously each spelled this list out by hand.
  std::array<NamedCounter, 3> hotPathCounters() const {
    return {{{"DeltaProps", "delta_propagations", DeltaPropagations},
             {"Pruned", "propagations_pruned", PropagationsPruned},
             {"LSwords", "ls_union_words", LSUnionWords}}};
  }

  /// Every counter with its snake_case key — the single naming source for
  /// the metrics-registry export and any full JSON emitter.
  std::array<NamedCounter, 27> allCounters() const {
    return {{{"VarsCreated", "vars_created", VarsCreated},
             {"OracleSubs", "oracle_substitutions", OracleSubstitutions},
             {"InitialEdges", "initial_edges", InitialEdges},
             {"Sources", "distinct_sources", DistinctSources},
             {"Sinks", "distinct_sinks", DistinctSinks},
             {"Work", "work", Work},
             {"Redundant", "redundant_adds", RedundantAdds},
             {"SelfEdges", "self_edges", SelfEdges},
             {"VarsElim", "vars_eliminated", VarsEliminated},
             {"Cycles", "cycles_collapsed", CyclesCollapsed},
             {"SearchSteps", "cycle_search_steps", CycleSearchSteps},
             {"Searches", "cycle_searches", CycleSearches},
             {"Periodic", "periodic_passes", PeriodicPasses},
             {"OfflineVars", "offline_collapsed_vars", OfflineCollapsedVars},
             {"HVNLabels", "hvn_labels", HVNLabels},
             {"OfflineSCCs", "offline_sccs", OfflineSCCs},
             {"Mismatches", "mismatches", Mismatches},
             {"Processed", "constraints_processed", ConstraintsProcessed},
             {"LSwords", "ls_union_words", LSUnionWords},
             {"DeltaProps", "delta_propagations", DeltaPropagations},
             {"Pruned", "propagations_pruned", PropagationsPruned},
             {"WavePasses", "wave_passes", WavePasses},
             {"Levels", "levels_propagated", LevelsPropagated},
             {"Fallbacks", "wave_fallbacks", WaveFallbacks},
             {"Retractions", "retractions", Retractions},
             {"ConeVars", "cone_vars_recomputed", ConeVarsRecomputed},
             {"Splits", "collapses_split", CollapsesSplit}}};
  }

  /// Mirrors every counter into \p Registry as a gauge named
  /// `poce_solver_<key>` (observe-only: the registry is written at export
  /// time, never read back, so counters stay bit-identical to a build
  /// without metrics). Defined in ConstraintSolver.cpp.
  void exportTo(MetricsRegistry &Registry) const;
};

} // namespace poce

#endif // POCE_SETCON_SOLVERSTATS_H
