file(REMOVE_RECURSE
  "CMakeFiles/setcon_tests.dir/constraint_file_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/constraint_file_test.cpp.o.d"
  "CMakeFiles/setcon_tests.dir/cycle_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/cycle_test.cpp.o.d"
  "CMakeFiles/setcon_tests.dir/equivalence_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/equivalence_test.cpp.o.d"
  "CMakeFiles/setcon_tests.dir/oracle_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/oracle_test.cpp.o.d"
  "CMakeFiles/setcon_tests.dir/solver_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/solver_test.cpp.o.d"
  "CMakeFiles/setcon_tests.dir/stress_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/stress_test.cpp.o.d"
  "CMakeFiles/setcon_tests.dir/term_test.cpp.o"
  "CMakeFiles/setcon_tests.dir/term_test.cpp.o.d"
  "setcon_tests"
  "setcon_tests.pdb"
  "setcon_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setcon_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
