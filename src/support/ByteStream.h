//===- support/ByteStream.h - Bounds-checked binary IO ----------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte-stream helpers for the snapshot subsystem
/// (serve/GraphSnapshot): a growable ByteWriter, a bounds-checked
/// ByteReader with sticky error state, an FNV-1a checksum, and whole-file
/// read/write utilities.
///
/// The encoding is explicitly little-endian (bytes are composed and
/// decomposed arithmetically), so snapshots are portable across hosts
/// regardless of native endianness. The reader never trusts the input:
/// every primitive read checks the remaining byte count and records a
/// positioned error message instead of reading out of bounds, and once a
/// read fails every subsequent read fails too — callers can batch reads
/// and check failed() once.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_BYTESTREAM_H
#define POCE_SUPPORT_BYTESTREAM_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace poce {

/// Computes the 64-bit FNV-1a hash of \p Size bytes, continuing from
/// \p Seed (pass the default to start a fresh hash).
uint64_t fnv1a64(const uint8_t *Data, size_t Size,
                 uint64_t Seed = 0xcbf29ce484222325ULL);

/// Growable little-endian binary writer.
class ByteWriter {
public:
  void u8(uint8_t Value) { Buffer.push_back(Value); }

  void u32(uint32_t Value) {
    for (int Shift = 0; Shift != 32; Shift += 8)
      Buffer.push_back(static_cast<uint8_t>(Value >> Shift));
  }

  void u64(uint64_t Value) {
    for (int Shift = 0; Shift != 64; Shift += 8)
      Buffer.push_back(static_cast<uint8_t>(Value >> Shift));
  }

  void bytes(const void *Data, size_t Size) {
    const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
    Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
  }

  /// Writes a u32 length prefix followed by the string bytes.
  void str(const std::string &Value) {
    u32(static_cast<uint32_t>(Value.size()));
    bytes(Value.data(), Value.size());
  }

  size_t size() const { return Buffer.size(); }

  /// Overwrites the 8 bytes at \p Offset with \p Value (little-endian);
  /// used to back-patch checksums and sizes after the payload is known.
  void patchU64(size_t Offset, uint64_t Value);

  const std::vector<uint8_t> &buffer() const { return Buffer; }
  std::vector<uint8_t> take() { return std::move(Buffer); }

private:
  std::vector<uint8_t> Buffer;
};

/// Bounds-checked little-endian binary reader over a borrowed buffer.
/// All reads return false (and leave the output untouched) once the
/// stream has failed; the first failure records a positioned message.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool u8(uint8_t &Out);
  bool u32(uint32_t &Out);
  bool u64(uint64_t &Out);

  /// Reads a u32 length prefix and that many bytes into \p Out. Fails if
  /// the declared length exceeds the remaining bytes.
  bool str(std::string &Out);

  /// Marks the stream as failed with \p Reason (annotated with the
  /// current byte offset). Used by callers for semantic validation
  /// failures so they surface like truncation errors.
  void fail(const std::string &Reason);

  bool failed() const { return Failed; }
  const std::string &error() const { return Error; }
  size_t position() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

private:
  bool take(size_t N, const char *What);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
  std::string Error;
};

/// Writes \p Buffer to \p Path directly (truncate + write + close).
/// NOT crash-safe: an interrupted write leaves a truncated file at
/// \p Path. Use writeFileAtomic for anything a restart must be able to
/// trust. Returns false and fills \p ErrorOut on failure. Failpoint:
/// `bytestream.write` (error, short).
bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Buffer,
                    std::string *ErrorOut);

/// Crash-safe whole-file write: writes `<Path>.tmp`, fsyncs it, renames
/// it over \p Path, then fsyncs the containing directory so the rename
/// itself is durable. A crash at any point leaves either the old file
/// intact or the new file complete — never a truncated \p Path (at worst
/// a stray `.tmp`). Failpoints: `atomic.write` (error, short, crash),
/// `atomic.before_fsync` and `atomic.before_rename` (crash between the
/// corresponding steps; error injects a failure there).
Status writeFileAtomic(const std::string &Path,
                       const std::vector<uint8_t> &Buffer);

/// Reads all of \p Path into \p Buffer. Returns false and fills
/// \p ErrorOut on failure.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Buffer,
                   std::string *ErrorOut);

} // namespace poce

#endif // POCE_SUPPORT_BYTESTREAM_H
