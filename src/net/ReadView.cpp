//===- net/ReadView.cpp - RCU-published immutable query views -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "net/ReadView.h"

#include "serve/QueryEngine.h"

#include <cassert>

using namespace poce;
using namespace poce::net;

Expected<std::shared_ptr<const ReadView>>
ReadView::build(const std::vector<uint8_t> &SnapshotBytes, uint64_t Epoch) {
  std::shared_ptr<ReadView> View(new ReadView());
  Status Loaded = serve::GraphSnapshot::deserialize(
      SnapshotBytes.data(), SnapshotBytes.size(), View->Bundle);
  if (!Loaded)
    return Loaded.withContext("building read view");
  // Settle everything lazy up front: after this, queries touch only the
  // const read surface and the view is shareable with no locks.
  View->Bundle.Solver->materializeAllViews();
  assert(View->Bundle.Solver->readShareable() &&
         "materializeAllViews must settle the const read surface");
  Status Adopted = View->System.adoptDeclarations(*View->Bundle.Solver);
  if (!Adopted)
    return Adopted.withContext("building read view");
  View->Checksum = serve::GraphSnapshot::payloadChecksum(
      SnapshotBytes.data(), SnapshotBytes.size());
  View->Epoch = Epoch;
  return std::shared_ptr<const ReadView>(std::move(View));
}

uint32_t ReadView::varOf(const std::string &Name) const {
  uint32_t Index = System.varIndex(Name);
  if (Index == ConstraintSystemFile::NotFound ||
      Index >= Bundle.Solver->numCreations())
    return NotFound;
  return Bundle.Solver->varOfCreation(Index);
}

std::string ReadView::ls(uint32_t Var) const {
  const ConstraintSolver &Solver = *Bundle.Solver;
  VarId Rep = Solver.repConst(Var);
  return "ok " + serve::render::renderSet(serve::render::lsItems(
                     Solver, Solver.leastSolutionViewConst(Rep)));
}

std::string ReadView::pts(uint32_t Var) const {
  const ConstraintSolver &Solver = *Bundle.Solver;
  VarId Rep = Solver.repConst(Var);
  return "ok " + serve::render::renderSet(serve::render::ptsItems(
                     Solver, Solver.leastSolutionViewConst(Rep)));
}

std::string ReadView::alias(uint32_t X, uint32_t Y) const {
  return Bundle.Solver->aliasConst(X, Y) ? "ok true" : "ok false";
}
