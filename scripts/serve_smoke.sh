#!/usr/bin/env bash
# End-to-end smoke test of scserved: solve a corpus system, answer
# queries over the newline protocol, add constraints through the online
# closure, snapshot the warm graph, then restart from the snapshot and
# check both the old answers and the incremental additions survived.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSERVED="$BUILD_DIR/src/driver/scserved"
if [ ! -x "$SCSERVED" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scserved
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SNAP="$WORK/swap.snap"

check() { # check <transcript> <pattern>...
  local transcript=$1
  shift
  for pattern in "$@"; do
    if ! grep -qF -- "$pattern" "$transcript"; then
      echo "FAIL: expected '$pattern' in:" >&2
      cat "$transcript" >&2
      exit 1
    fi
  done
}

# Session 1: solve swap.scs, query, extend, snapshot.
"$SCSERVED" --config=if-online examples/data/swap.scs > "$WORK/s1.out" << EOF
pts P
pts Q
alias P Q
alias X Y
ls X
add var Z
add P <= Z
pts Z
save $SNAP
stats
counters
quit
EOF
check "$WORK/s1.out" \
  "ok ready config=IF-Online" \
  "ok { nx, ny }" \
  "ok true" \
  "ok false" \
  "ok added" \
  "ok saved $SNAP" \
  "cycles_collapsed=" \
  "budget_aborts=0" \
  "p99_us="
# The collapsed T/P/Q cycle makes both pointers see both locations.
[ "$(grep -c "ok { nx, ny }" "$WORK/s1.out")" -ge 2 ] || {
  echo "FAIL: expected pts P and pts Q to both be { nx, ny }" >&2
  exit 1
}

# Session 2: warm start from the snapshot; the added variable Z and its
# constraint must still be there, with the same answers. Also probe the
# structured error taxonomy: unknown verb, unknown variable, oversized
# request.
LONG_LINE=$(printf 'x%.0s' $(seq 1 300))
"$SCSERVED" --snapshot="$SNAP" --threads=8 --max-request=200 > "$WORK/s2.out" << EOF
pts P
pts Z
alias Z P
err-on-purpose
pts NoSuchVar
$LONG_LINE
quit
EOF
check "$WORK/s2.out" \
  "ok ready config=IF-Online vars=6" \
  "ok { nx, ny }" \
  "ok true" \
  "err invalid_argument unknown verb 'err-on-purpose'" \
  "err not_found unknown variable 'NoSuchVar'" \
  "err too_large request is 300 bytes"
# Z inherited P's whole solution through the added constraint.
[ "$(grep -c "ok { nx, ny }" "$WORK/s2.out")" -ge 2 ] || {
  echo "FAIL: expected pts Z == pts P == { nx, ny } after warm start" >&2
  exit 1
}

# A truncated snapshot must be rejected with an actionable message.
head -c 40 "$SNAP" > "$WORK/short.snap"
if "$SCSERVED" --snapshot="$WORK/short.snap" < /dev/null > "$WORK/s3.out" 2>&1; then
  echo "FAIL: truncated snapshot was accepted" >&2
  exit 1
fi
grep -q "truncated" "$WORK/s3.out" || {
  echo "FAIL: expected a truncation error, got:" >&2
  cat "$WORK/s3.out" >&2
  exit 1
}

echo "serve_smoke: OK"
