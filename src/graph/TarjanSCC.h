//===- graph/TarjanSCC.h - Strongly connected components --------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative Tarjan SCC computation. Used as the ground truth for cycle
/// statistics (Table 1's "variables in SCCs" columns, Figure 11's
/// detection rates) and to build the oracle's variable -> witness map.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_GRAPH_TARJANSCC_H
#define POCE_GRAPH_TARJANSCC_H

#include "graph/Digraph.h"

#include <cstdint>
#include <vector>

namespace poce {

/// Result of an SCC computation over a Digraph.
struct SCCResult {
  /// Component id of every node; components are numbered in reverse
  /// topological order of the condensation (Tarjan's natural order).
  std::vector<uint32_t> ComponentOf;

  /// Members of each component.
  std::vector<std::vector<uint32_t>> Components;

  uint32_t numComponents() const {
    return static_cast<uint32_t>(Components.size());
  }

  /// Number of nodes that live in a non-trivial (size >= 2) component.
  uint32_t numNodesInNontrivialSCCs() const;

  /// Size of the largest component.
  uint32_t maxComponentSize() const;

  /// Number of non-trivial (size >= 2) components.
  uint32_t numNontrivialSCCs() const;
};

/// Computes strongly connected components of \p G (iterative Tarjan; safe
/// for graphs with millions of nodes).
SCCResult computeSCCs(const Digraph &G);

/// Builds the condensation of \p G given its SCC decomposition: one node
/// per component, deduplicated edges, no self-loops.
Digraph condense(const Digraph &G, const SCCResult &SCCs);

} // namespace poce

#endif // POCE_GRAPH_TARJANSCC_H
