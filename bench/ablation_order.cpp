//===- bench/ablation_order.cpp - Variable-order ablation ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the variable order o(.) used by inductive form and the
/// chain searches. The paper: "Choosing a good order is hard, and we have
/// found that a random order performs as well or better than any other
/// order we picked." Compares random (three seeds), creation, and
/// reverse-creation orders under IF-Online on a suite subset.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  if (!Env.MaxAst)
    Env.MaxAst = 20000;
  std::printf("=== Ablation: variable order under IF-Online ===\n");
  Env.print();

  struct OrderChoice {
    const char *Name;
    OrderKind Kind;
    uint64_t Seed;
  };
  const OrderChoice Choices[] = {
      {"random#1", OrderKind::Random, 1},
      {"random#2", OrderKind::Random, 2},
      {"random#3", OrderKind::Random, 3},
      {"creation", OrderKind::Creation, 1},
      {"reverse", OrderKind::ReverseCreation, 1},
  };

  TextTable Table({"Benchmark", "Order", "Elim", "Work", "Time(s)"});
  for (auto &Entry : prepareSuite(Env)) {
    for (const OrderChoice &Choice : Choices) {
      SolverOptions Options =
          makeConfig(GraphForm::Inductive, CycleElim::Online, Choice.Seed);
      Options.Order = Choice.Kind;
      double Best = 0;
      SolverStats Stats;
      for (unsigned Repeat = 0; Repeat != Env.Repeats; ++Repeat) {
        TermTable Terms(Entry->Constructors);
        Timer T;
        ConstraintSolver Solver(Terms, Options);
        andersen::ConstraintGenerator Generator(Solver);
        Generator.run(Entry->Program->Unit);
        Solver.finalize();
        double Seconds = T.seconds();
        if (Repeat == 0 || Seconds < Best)
          Best = Seconds;
        Stats = Solver.stats();
      }
      Table.addRow({Entry->Program->Spec.Name, Choice.Name,
                    formatGrouped(Stats.VarsEliminated),
                    formatGrouped(Stats.Work), formatDouble(Best, 3)});
    }
  }
  Table.print();
  return 0;
}
