//===- support/CacheAligned.h - Cache-line padded wrappers ------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line layout discipline for per-lane accumulators. When N lanes
/// each own one slot of a contiguous array and update it on every unit of
/// work, two adjacent slots sharing a 64-byte line turn independent writes
/// into coherence-protocol ping-pong (false sharing): the line bounces
/// between cores on every update even though no datum is actually shared.
/// The repair is purely physical — over-align each slot to the line size
/// so no two lanes ever write the same line.
///
/// CacheAligned<T> is that repair as a type: `std::vector<CacheAligned<T>>`
/// (or a plain array) gives every lane a private set of lines. Because the
/// struct's alignment is the line size, the language rounds sizeof up to a
/// multiple of it, so the padding is implicit and survives T growing new
/// fields. The static_asserts below pin both properties; use-sites add a
/// `static_assert(cacheAlignedLayoutOk<T>)` so a future refactor that
/// drops the wrapper (or an exotic T that over-aligns past a line) fails
/// to compile instead of silently re-introducing the ping-pong.
///
/// Used by the parallel least-solution pass (per-lane SolverStats deltas
/// and epoch scratch) and the network serving layer (per-lane request
/// counters and latency buckets).
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_CACHEALIGNED_H
#define POCE_SUPPORT_CACHEALIGNED_H

#include <cstddef>

namespace poce {

/// The coherence granule the padding targets. 64 bytes on every x86-64
/// and most AArch64 parts; hardware with a larger granule only loses a
/// little padding efficiency, never correctness.
inline constexpr std::size_t CacheLineBytes = 64;

/// One per-lane slot, padded so adjacent slots never share a cache line.
/// Access the payload through .Value; the wrapper adds no behavior.
template <typename T> struct alignas(CacheLineBytes) CacheAligned {
  T Value{};
};

/// True when CacheAligned<T> really occupies whole cache lines: the
/// compile-time check every per-lane array should assert.
template <typename T>
inline constexpr bool cacheAlignedLayoutOk =
    sizeof(CacheAligned<T>) % CacheLineBytes == 0 &&
    alignof(CacheAligned<T>) >= CacheLineBytes;

static_assert(cacheAlignedLayoutOk<char>,
              "a one-byte payload must still fill a whole line");
static_assert(sizeof(CacheAligned<char>) == CacheLineBytes,
              "small payloads must pad to exactly one line, not more");

} // namespace poce

#endif // POCE_SUPPORT_CACHEALIGNED_H
