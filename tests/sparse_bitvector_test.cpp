//===- tests/sparse_bitvector_test.cpp - SparseBitVector unit tests --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the sparse bitmap backing the solver's term sets and
/// least solutions: bit set/test/reset, element-boundary ids, word-level
/// unions with changed-flag and new-bit visitation, difference iteration,
/// and a randomized cross-check against std::set.
///
//===----------------------------------------------------------------------===//

#include "support/PRNG.h"
#include "support/SparseBitVector.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace poce;

namespace {

std::vector<uint32_t> ids(const SparseBitVector &S) {
  return S.toVector<uint32_t>();
}

} // namespace

TEST(SparseBitVectorTest, EmptyAndBasicSetTest) {
  SparseBitVector S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_FALSE(S.test(0));
  EXPECT_FALSE(S.test(12345));

  EXPECT_TRUE(S.testAndSet(5));
  EXPECT_FALSE(S.testAndSet(5)); // Already set.
  S.set(5);                      // Idempotent.
  EXPECT_TRUE(S.test(5));
  EXPECT_FALSE(S.test(4));
  EXPECT_FALSE(S.test(6));
  EXPECT_EQ(S.count(), 1u);
  EXPECT_FALSE(S.empty());
}

TEST(SparseBitVectorTest, BoundaryWordsAndElements) {
  // Ids straddling every word and element boundary of the 128-bit layout.
  const std::vector<uint32_t> Boundary = {
      0,   63,  64,  127,           // Element 0: both words, both edges.
      128, 191, 192, 255,           // Element 1.
      SparseBitVector::ElementBits * 1000,     // Far element, first bit.
      SparseBitVector::ElementBits * 1000 + 127, // Far element, last bit.
      0xFFFFFFFFu,                  // Maximum id.
  };
  SparseBitVector S;
  for (uint32_t Id : Boundary)
    EXPECT_TRUE(S.testAndSet(Id)) << Id;
  EXPECT_EQ(S.count(), Boundary.size());
  for (uint32_t Id : Boundary)
    EXPECT_TRUE(S.test(Id)) << Id;
  // Neighbors of boundary bits stay clear.
  EXPECT_FALSE(S.test(1));
  EXPECT_FALSE(S.test(62));
  EXPECT_FALSE(S.test(65));
  EXPECT_FALSE(S.test(126));
  EXPECT_FALSE(S.test(129));
  EXPECT_FALSE(S.test(SparseBitVector::ElementBits * 1000 + 1));
  EXPECT_FALSE(S.test(0xFFFFFFFEu));

  std::vector<uint32_t> Sorted = Boundary;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(ids(S), Sorted); // Iteration is ascending.
}

TEST(SparseBitVectorTest, ResetErasesEmptyElements) {
  SparseBitVector S;
  S.set(10);
  S.set(500);
  EXPECT_TRUE(S.reset(10));
  EXPECT_FALSE(S.reset(10)); // Already clear.
  EXPECT_FALSE(S.reset(99)); // Never set.
  EXPECT_EQ(S.count(), 1u);
  EXPECT_FALSE(S.test(10));
  EXPECT_TRUE(S.test(500));

  // Equality is structural: a set that never saw id 10 compares equal.
  SparseBitVector T;
  T.set(500);
  EXPECT_EQ(S, T);
  S.reset(500);
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S, SparseBitVector());
}

TEST(SparseBitVectorTest, UnionWithReportsChange) {
  SparseBitVector A, B;
  for (uint32_t Id : {1u, 64u, 300u})
    A.set(Id);
  for (uint32_t Id : {64u, 300u, 9000u})
    B.set(Id);

  uint64_t Words = 0;
  EXPECT_TRUE(A.unionWith(B, &Words));
  EXPECT_GT(Words, 0u);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(ids(A), (std::vector<uint32_t>{1, 64, 300, 9000}));

  // Second union adds nothing and says so — the difference-propagation
  // pruning signal.
  EXPECT_FALSE(A.unionWith(B));
  // Self-union and union with an empty set are no-ops.
  EXPECT_FALSE(A.unionWith(A));
  EXPECT_FALSE(A.unionWith(SparseBitVector()));
  // Union into an empty set copies.
  SparseBitVector C;
  EXPECT_TRUE(C.unionWith(A));
  EXPECT_EQ(C, A);
}

TEST(SparseBitVectorTest, UnionVisitorSeesOnlyNewBitsAscending) {
  SparseBitVector A, B;
  A.set(5);
  A.set(1000);
  for (uint32_t Id : {3u, 5u, 200u, 1000u, 40000u})
    B.set(Id);

  std::vector<uint32_t> New;
  size_t Added =
      A.unionWithVisitor(B, [&](uint32_t Id) { New.push_back(Id); });
  EXPECT_EQ(Added, 3u);
  EXPECT_EQ(New, (std::vector<uint32_t>{3, 200, 40000}));
  EXPECT_EQ(A.count(), 5u);
}

TEST(SparseBitVectorTest, SubsetAndDifference) {
  SparseBitVector A, B;
  for (uint32_t Id : {2u, 130u, 7000u})
    A.set(Id);
  for (uint32_t Id : {2u, 130u, 7000u, 8000u})
    B.set(Id);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.isSubsetOf(A));
  EXPECT_TRUE(SparseBitVector().isSubsetOf(A));

  std::vector<uint32_t> Diff;
  B.forEachDifference(A, [&](uint32_t Id) { Diff.push_back(Id); });
  EXPECT_EQ(Diff, (std::vector<uint32_t>{8000}));
  Diff.clear();
  B.forEachDifference(SparseBitVector(),
                      [&](uint32_t Id) { Diff.push_back(Id); });
  EXPECT_EQ(Diff, ids(B));
}

TEST(SparseBitVectorTest, AssignDifference) {
  SparseBitVector A, B, Out;
  for (uint32_t Id : {2u, 63u, 64u, 130u, 7000u})
    A.set(Id);
  for (uint32_t Id : {63u, 130u, 9000u})
    B.set(Id);
  Out.set(999); // Stale contents are discarded.
  Out.assignDifference(A, B);
  EXPECT_EQ(ids(Out), (std::vector<uint32_t>{2, 64, 7000}));

  // Difference with an empty set copies; empty result is truly empty.
  Out.assignDifference(A, SparseBitVector());
  EXPECT_EQ(Out, A);
  Out.assignDifference(A, A);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(Out, SparseBitVector());

  // Randomized cross-check against forEachDifference.
  PRNG Rng(77);
  for (int Round = 0; Round != 20; ++Round) {
    SparseBitVector X, Y;
    for (int I = 0; I != 200; ++I) {
      X.set(static_cast<uint32_t>(Rng.nextBelow(3000)));
      Y.set(static_cast<uint32_t>(Rng.nextBelow(3000)));
    }
    std::vector<uint32_t> Expected;
    X.forEachDifference(Y, [&](uint32_t Id) { Expected.push_back(Id); });
    Out.assignDifference(X, Y);
    EXPECT_EQ(ids(Out), Expected);
    EXPECT_EQ(Out.count(), Expected.size());
  }
}

TEST(SparseBitVectorTest, RandomizedAgainstStdSet) {
  PRNG Rng(0xb17c0de);
  SparseBitVector S;
  std::set<uint32_t> Ref;
  // Mixed workload over a clustered id space (like hash-consed ExprIds).
  for (int I = 0; I != 20000; ++I) {
    uint32_t Id = static_cast<uint32_t>(Rng.nextBelow(4096));
    switch (Rng.nextBelow(4)) {
    case 0:
    case 1:
      EXPECT_EQ(S.testAndSet(Id), Ref.insert(Id).second);
      break;
    case 2:
      EXPECT_EQ(S.test(Id), Ref.count(Id) != 0);
      break;
    default:
      EXPECT_EQ(S.reset(Id), Ref.erase(Id) != 0);
      break;
    }
  }
  EXPECT_EQ(S.count(), Ref.size());
  EXPECT_EQ(ids(S), std::vector<uint32_t>(Ref.begin(), Ref.end()));
}

TEST(SparseBitVectorTest, RandomizedUnions) {
  PRNG Rng(42);
  for (int Round = 0; Round != 50; ++Round) {
    SparseBitVector A, B;
    std::set<uint32_t> RefA, RefB;
    for (int I = 0; I != 100; ++I) {
      uint32_t Id = static_cast<uint32_t>(Rng.nextBelow(2000));
      A.set(Id);
      RefA.insert(Id);
      Id = static_cast<uint32_t>(Rng.nextBelow(2000));
      B.set(Id);
      RefB.insert(Id);
    }
    size_t Before = RefA.size();
    RefA.insert(RefB.begin(), RefB.end());
    bool Changed = A.unionWith(B);
    EXPECT_EQ(Changed, RefA.size() != Before);
    EXPECT_EQ(A.count(), RefA.size());
    EXPECT_EQ(ids(A), std::vector<uint32_t>(RefA.begin(), RefA.end()));
    EXPECT_TRUE(B.isSubsetOf(A));
  }
}
