//===- driver/scserved.cpp - Long-running constraint query server ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// scserved: solver-as-a-service over stdin/stdout. Loads a warm solved
/// graph (from a GraphSnapshot, or by solving a .scs file once at
/// startup) and then answers a newline-delimited request/response
/// protocol — one request line in, exactly one `ok ...` or `err ...`
/// line out — so sessions are fully scriptable without sockets:
///
///   scserved --snapshot=graph.snap
///   scserved --config=if-online system.scs
///
/// Protocol (see README.md for a copy-pasteable session):
///   ls X          least solution of X
///   pts X         points-to location tags of X
///   alias X Y     may X and Y alias?
///   add LINE      feed one constraint-file line through the online closure
///   save PATH     snapshot the current graph
///   stats         solver statistics
///   counters      query latency percentiles and cache counters
///   help | quit
///
//===----------------------------------------------------------------------===//

#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "support/ByteStream.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace poce;
using namespace poce::serve;

namespace {

bool parseConfig(const std::string &Name, SolverOptions &Options) {
  if (Name == "sf-plain")
    Options = makeConfig(GraphForm::Standard, CycleElim::None);
  else if (Name == "if-plain")
    Options = makeConfig(GraphForm::Inductive, CycleElim::None);
  else if (Name == "sf-online")
    Options = makeConfig(GraphForm::Standard, CycleElim::Online);
  else if (Name == "if-online")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  else
    return false;
  return true;
}

/// Splits a request line on spaces (the constraint payload of `add` keeps
/// its spacing via the Rest capture).
struct Request {
  std::string Verb, Arg1, Arg2, Rest;
};

Request parseRequest(const std::string &Line) {
  Request Req;
  std::istringstream In(Line);
  In >> Req.Verb >> Req.Arg1 >> Req.Arg2;
  size_t VerbEnd = Line.find(Req.Verb);
  if (VerbEnd != std::string::npos) {
    size_t RestAt = VerbEnd + Req.Verb.size();
    while (RestAt < Line.size() && Line[RestAt] == ' ')
      ++RestAt;
    Req.Rest = Line.substr(RestAt);
  }
  return Req;
}

std::string joinSet(const std::vector<std::string> &Items) {
  std::string Out = "{";
  for (size_t I = 0; I != Items.size(); ++I)
    Out += (I ? ", " : " ") + Items[I];
  Out += Items.empty() ? "}" : " }";
  return Out;
}

uint64_t percentileMicros(std::vector<uint64_t> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Index >= Sorted.size())
    Index = Sorted.size() - 1;
  return Sorted[Index];
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cmd("scserved",
                  "long-running inclusion-constraint query server "
                  "(newline protocol on stdin/stdout)");
  std::string Snapshot;
  std::string Config = "if-online";
  int64_t Seed = 0x706f6365;
  int64_t Threads = 1;
  int64_t CacheCapacity = 256;
  Cmd.addString("snapshot", &Snapshot, "load this snapshot instead of "
                                       "solving a .scs file");
  Cmd.addString("config", &Config, "{sf,if}-{plain,online} for .scs input");
  Cmd.addInt("seed", &Seed, "variable-order seed for .scs input");
  Cmd.addInt("threads", &Threads,
             "lanes for least-solution materialization on load "
             "(0 = hardware); results identical for any value");
  Cmd.addInt("cache", &CacheCapacity, "materialized-view LRU capacity");
  if (!Cmd.parse(Argc, Argv))
    return 1;

  std::string Error;
  SolverBundle Bundle;
  if (!Snapshot.empty()) {
    if (!Cmd.positionals().empty()) {
      std::fprintf(stderr,
                   "scserved: --snapshot and a .scs file are exclusive\n");
      return 1;
    }
    if (!GraphSnapshot::load(Snapshot, Bundle, &Error)) {
      std::fprintf(stderr, "scserved: %s: %s\n", Snapshot.c_str(),
                   Error.c_str());
      return 1;
    }
  } else {
    if (Cmd.positionals().size() != 1) {
      std::fprintf(stderr, "scserved: expected --snapshot=PATH or exactly "
                           "one .scs file; try --help\n");
      return 1;
    }
    std::ifstream In(Cmd.positionals()[0]);
    if (!In) {
      std::fprintf(stderr, "scserved: cannot open '%s'\n",
                   Cmd.positionals()[0].c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    ConstraintSystemFile System;
    if (!System.parse(Buffer.str(), &Error)) {
      std::fprintf(stderr, "scserved: %s: %s\n",
                   Cmd.positionals()[0].c_str(), Error.c_str());
      return 1;
    }
    SolverOptions Options;
    if (!parseConfig(Config, Options)) {
      std::fprintf(stderr, "scserved: unknown configuration '%s' (oracle "
                           "and periodic solvers cannot serve)\n",
                   Config.c_str());
      return 1;
    }
    Options.Seed = static_cast<uint64_t>(Seed);
    Bundle.Constructors = std::make_unique<ConstructorTable>();
    Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
    Bundle.Solver = std::make_unique<ConstraintSolver>(*Bundle.Terms, Options);
    System.emit(*Bundle.Solver);
  }

  ConstraintSolver &Solver = *Bundle.Solver;
  Solver.setThreads(static_cast<unsigned>(Threads));
  Solver.materializeAllViews();

  QueryEngine Engine(Solver, static_cast<size_t>(CacheCapacity));
  if (!Engine.valid()) {
    std::fprintf(stderr, "scserved: %s\n", Engine.initError().c_str());
    return 1;
  }

  std::printf("ok ready config=%s vars=%u live=%u\n",
              Solver.options().configName().c_str(), Solver.numVars(),
              Solver.numLiveVars());
  std::fflush(stdout);

  std::vector<uint64_t> LatencyMicros;
  auto Reply = [](const std::string &Line) {
    std::fputs(Line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  auto ResolveVar = [&](const std::string &Name, VarId &Out) {
    uint32_t Var = Engine.varOf(Name);
    if (Var == QueryEngine::NotFound)
      return false;
    Out = Var;
    return true;
  };

  std::string Line;
  while (std::getline(std::cin, Line)) {
    Request Req = parseRequest(Line);
    if (Req.Verb.empty() || Req.Verb[0] == '#')
      continue;

    if (Req.Verb == "quit" || Req.Verb == "exit") {
      Reply("ok bye");
      break;
    }
    if (Req.Verb == "help") {
      Reply("ok commands: ls X | pts X | alias X Y | add LINE | "
            "save PATH | stats | counters | help | quit");
      continue;
    }
    if (Req.Verb == "stats") {
      const SolverStats &S = Solver.stats();
      Reply("ok config=" + Solver.options().configName() +
            " vars=" + std::to_string(S.VarsCreated) +
            " live=" + std::to_string(Solver.numLiveVars()) +
            " work=" + std::to_string(S.Work) +
            " cycles_collapsed=" + std::to_string(S.CyclesCollapsed) +
            " vars_eliminated=" + std::to_string(S.VarsEliminated));
      continue;
    }
    if (Req.Verb == "counters") {
      std::vector<uint64_t> Sorted = LatencyMicros;
      std::sort(Sorted.begin(), Sorted.end());
      const QueryEngine::Counters &C = Engine.counters();
      Reply("ok queries=" + std::to_string(C.Queries) +
            " hits=" + std::to_string(C.CacheHits) +
            " misses=" + std::to_string(C.CacheMisses) +
            " stale=" + std::to_string(C.StaleRebuilds) +
            " additions=" + std::to_string(C.Additions) +
            " evictions=" + std::to_string(Engine.cacheEvictions()) +
            " p50_us=" + std::to_string(percentileMicros(Sorted, 0.50)) +
            " p99_us=" + std::to_string(percentileMicros(Sorted, 0.99)));
      continue;
    }
    if (Req.Verb == "save") {
      if (Req.Arg1.empty()) {
        Reply("err save needs a path");
        continue;
      }
      std::vector<uint8_t> Bytes;
      if (!GraphSnapshot::serialize(Solver, Bytes, &Error)) {
        Reply("err " + Error);
        continue;
      }
      if (!writeFileBytes(Req.Arg1, Bytes, &Error)) {
        Reply("err " + Error);
        continue;
      }
      Reply("ok saved " + Req.Arg1 + " (" + std::to_string(Bytes.size()) +
            " bytes)");
      continue;
    }
    if (Req.Verb == "add") {
      if (Req.Rest.empty()) {
        Reply("err add needs a constraint-file line");
        continue;
      }
      if (!Engine.addConstraint(Req.Rest, &Error)) {
        Reply("err " + Error);
        continue;
      }
      Reply("ok added");
      continue;
    }

    if (Req.Verb == "ls" || Req.Verb == "pts" || Req.Verb == "alias") {
      auto Start = std::chrono::steady_clock::now();
      std::string Response;
      VarId X = 0, Y = 0;
      if (!ResolveVar(Req.Arg1, X)) {
        Reply("err unknown variable '" + Req.Arg1 + "'");
        continue;
      }
      if (Req.Verb == "alias") {
        if (!ResolveVar(Req.Arg2, Y)) {
          Reply("err unknown variable '" + Req.Arg2 + "'");
          continue;
        }
        Response = Engine.alias(X, Y) ? "ok true" : "ok false";
      } else if (Req.Verb == "ls") {
        Response = "ok " + joinSet(Engine.ls(X));
      } else {
        Response = "ok " + joinSet(Engine.pts(X));
      }
      auto Elapsed = std::chrono::steady_clock::now() - Start;
      LatencyMicros.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Elapsed)
              .count()));
      Reply(Response);
      continue;
    }

    Reply("err unknown command '" + Req.Verb + "'; try help");
  }
  return 0;
}
