//===- net/Replication.cpp - Follower-side WAL tailing client -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "net/Replication.h"

#include "serve/GraphSnapshot.h"
#include "serve/ServerCore.h"
#include "support/ByteStream.h"
#include "support/FailPoint.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sys/socket.h>
#include <thread>

using namespace poce;
using namespace poce::net;

namespace {

uint64_t steadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Splits "verb arg1 arg2 ..." on single spaces into at most \p Max
/// fields; the last field keeps the remainder (record payloads contain
/// spaces).
std::vector<std::string> splitFields(const std::string &Line, size_t Max) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Out.size() + 1 < Max) {
    size_t Sp = Line.find(' ', Pos);
    if (Sp == std::string::npos)
      break;
    Out.push_back(Line.substr(Pos, Sp - Pos));
    Pos = Sp + 1;
  }
  Out.push_back(Line.substr(Pos));
  return Out;
}

} // namespace

// strtoull alone is too forgiving for wire fields: it skips leading
// whitespace and accepts a sign, so " 7", "+7", and "-1" all parse —
// the last wrapping to ULLONG_MAX with errno untouched. Demanding a
// leading digit of the base closes every one of those holes, and the
// End/errno checks keep trailing junk and overflow out.
bool poce::net::parseHexU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || !std::isxdigit(static_cast<unsigned char>(S[0])))
    return false;
  char *End = nullptr;
  errno = 0;
  Out = std::strtoull(S.c_str(), &End, 16);
  return errno == 0 && End && *End == '\0';
}

bool poce::net::parseDecU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || !std::isdigit(static_cast<unsigned char>(S[0])))
    return false;
  char *End = nullptr;
  errno = 0;
  Out = std::strtoull(S.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0';
}

ReplicationClient::ReplicationClient(NetServer &S, Options O)
    : Server(S), Opts(std::move(O)), Base(Opts.InitialBase),
      Seq(Opts.InitialSeq),
      RngState(Opts.JitterSeed ? Opts.JitterSeed : std::random_device{}()) {
  MetricsRegistry &R = MetricsRegistry::global();
  Connected = &R.gauge("poce_repl_connected",
                       "1 while the follower holds a live primary link");
  LagMs = &R.gauge("poce_repl_lag_ms",
                   "Milliseconds since the last line from the primary");
  LagRecords = &R.gauge(
      "poce_repl_lag_records",
      "Primary records (per last heartbeat) not yet applied locally");
  Applied = &R.counter("poce_repl_records_applied_total",
                       "Shipped WAL records applied on this follower");
  Reconnects = &R.counter("poce_repl_reconnects_total",
                          "Primary reconnect attempts after a lost link");
  Bootstraps = &R.counter("poce_repl_bootstraps_total",
                          "Snapshot bootstraps (cold start or divergence)");
  Divergences = &R.counter(
      "poce_repl_divergences_total",
      "Times the follower discarded state and re-bootstrapped");
}

void ReplicationClient::start() {
  Thread = std::thread([this] { run(); });
}

void ReplicationClient::requestStop() {
  Stop.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(FdMutex);
  if (ActiveFd >= 0)
    ::shutdown(ActiveFd, SHUT_RDWR);
}

void ReplicationClient::stop() {
  requestStop();
  if (Thread.joinable())
    Thread.join();
}

void ReplicationClient::sleepBackoff(unsigned Attempt) {
  // 25 ms * 2^attempt capped at 1 s, +-50% jitter (minstd LCG step kept
  // inline so the member state stays a plain uint64_t).
  uint64_t BaseMs = 25u << (Attempt < 6 ? Attempt : 6);
  if (BaseMs > 1000)
    BaseMs = 1000;
  RngState = (RngState * 48271u) % 2147483647u;
  if (RngState == 0)
    RngState = 1;
  uint64_t Delay = BaseMs / 2 + RngState % (BaseMs + 1);
  uint64_t End = steadyNowMs() + Delay;
  while (!Stop.load(std::memory_order_acquire) && steadyNowMs() < End)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

Status ReplicationClient::connect(LineClient &Client) {
  Status Connected = Opts.TcpSpec.empty() ? Client.connectUnix(Opts.UnixPath)
                                          : Client.connectTcp(Opts.TcpSpec);
  if (!Connected)
    return Connected;
  {
    std::lock_guard<std::mutex> Lock(FdMutex);
    ActiveFd = Client.fd();
  }
  // A stop may have raced the connect; re-check so the shutdown is not
  // missed.
  if (Stop.load(std::memory_order_acquire)) {
    ::shutdown(Client.fd(), SHUT_RDWR);
    return Status::error(ErrorCode::FailedPrecondition, "stopping");
  }
  return Client.setRecvTimeoutMs(Opts.TickMs);
}

void ReplicationClient::noteDivergence(const std::string &Why) {
  std::fprintf(stderr,
               "scserved: replication: diverged from the primary (%s); "
               "re-bootstrapping\n",
               Why.c_str());
  Divergences->inc();
  Base = 0;
  Seq = 0;
}

ReplicationClient::Action ReplicationClient::applyRecords(
    std::vector<std::pair<uint64_t, std::string>> Records) {
  if (Records.empty())
    return Action::Continue;
  uint64_t Last = Records.back().first;
  size_t Count = Records.size();
  Status AppliedOk = Server.applyReplicatedRecords(std::move(Records));
  if (!AppliedOk) {
    if (Stop.load(std::memory_order_acquire) ||
        AppliedOk.message().find("promoted") != std::string::npos) {
      std::fprintf(stderr, "scserved: replication: stopped (%s)\n",
                   AppliedOk.message().c_str());
      return Action::Stopped;
    }
    noteDivergence("record " + std::to_string(Last) +
                   " failed to apply: " + AppliedOk.message());
    return Action::Reconnect;
  }
  Seq = Last + 1;
  Applied->inc(Count);
  LagRecords->set(PrimarySeq > Seq ? PrimarySeq - Seq : 0);
  return Action::Continue;
}

ReplicationClient::Action
ReplicationClient::handleLine(LineClient &Client, const std::string &Line) {
  if (Line.empty())
    return Action::Continue;
  LastMsgMs = steadyNowMs();
  LagMs->set(0);
  if (Line.rfind("hb ", 0) == 0) {
    uint64_t N = 0;
    if (parseDecU64(Line.substr(3), N)) {
      PrimarySeq = N;
      LagRecords->set(N > Seq ? N - Seq : 0);
    }
    return Action::Continue;
  }
  if (Line.rfind("rebase ", 0) == 0) {
    uint64_t NewBase = 0;
    if (!parseHexU64(Line.substr(7), NewBase)) {
      std::fprintf(stderr,
                   "scserved: replication: malformed rebase line; "
                   "reconnecting\n");
      return Action::Reconnect;
    }
    Status Rebased = Server.applyReplicaRebase(NewBase);
    if (!Rebased) {
      if (Stop.load(std::memory_order_acquire))
        return Action::Stopped;
      noteDivergence("rebase to " + serve::hexId(NewBase) +
                     " failed: " + Rebased.message());
      return Action::Reconnect;
    }
    Base = NewBase;
    Seq = 0;
    return Action::Continue;
  }
  if (Line.rfind("r ", 0) == 0) {
    // Batch consecutive records: greedily drain whatever the primary has
    // already sent so one writer-lane round trip covers the burst.
    std::vector<std::pair<uint64_t, std::string>> Records;
    std::string Cur = Line;
    std::string Carry;
    for (;;) {
      std::vector<std::string> F = splitFields(Cur, 3);
      uint64_t K = 0;
      if (F.size() != 3 || !parseDecU64(F[1], K)) {
        std::fprintf(stderr,
                     "scserved: replication: malformed record line; "
                     "reconnecting\n");
        return Action::Reconnect;
      }
      if (K >= Seq + Records.size()) {
        if (K != Seq + Records.size()) {
          // A gap means the stream and our cursor disagree; resync via
          // the handshake (the cursor is still resumable).
          std::fprintf(stderr,
                       "scserved: replication: record gap (expected %" PRIu64
                       ", got %" PRIu64 "); reconnecting\n",
                       Seq + Records.size(), K);
          return Action::Reconnect;
        }
        Records.emplace_back(K, F[2]);
      } // else: duplicate of an already-applied record (handshake
        // overlap) — skip.
      std::string Next;
      if (!Client.tryRecvLine(Next))
        break;
      if (Next.empty())
        continue;
      if (Next.rfind("r ", 0) != 0) {
        Carry = Next;
        break;
      }
      Cur = Next;
    }
    Action Applied = applyRecords(std::move(Records));
    if (Applied != Action::Continue)
      return Applied;
    if (!Carry.empty())
      return handleLine(Client, Carry);
    return Action::Continue;
  }
  std::fprintf(stderr,
               "scserved: replication: unexpected line from the primary "
               "(%.40s); reconnecting\n",
               Line.c_str());
  return Action::Reconnect;
}

ReplicationClient::Action ReplicationClient::handshake(LineClient &Client) {
  Status Sent = Client.sendLine("replicate " + serve::hexId(Base) + " " +
                                std::to_string(Seq));
  if (!Sent)
    return Action::Reconnect;
  std::string Header;
  for (;;) {
    Status Got = Client.recvLine(Header);
    if (Got.ok())
      break;
    if (Got.code() == ErrorCode::Timeout) {
      if (Stop.load(std::memory_order_acquire))
        return Action::Stopped;
      continue;
    }
    return Action::Reconnect;
  }
  std::vector<std::string> F = splitFields(Header, 4);
  if (F.size() >= 4 && F[0] == "ok" && F[1] == "tail") {
    uint64_t B = 0, S = 0;
    if (!parseHexU64(F[2], B) || !parseDecU64(F[3], S) || B != Base || S != Seq) {
      std::fprintf(stderr,
                   "scserved: replication: tail header mismatch (%s); "
                   "reconnecting\n",
                   Header.c_str());
      return Action::Reconnect;
    }
    std::fprintf(stderr,
                 "scserved: replication: tailing from base=%s seq=%" PRIu64
                 "\n",
                 serve::hexId(Base).c_str(), Seq);
    return Action::Continue;
  }
  if (F.size() >= 4 && F[0] == "ok" && F[1] == "snapshot") {
    uint64_t B = 0, N = 0;
    if (!parseHexU64(F[2], B) || !parseDecU64(F[3], N)) {
      std::fprintf(stderr,
                   "scserved: replication: malformed snapshot header; "
                   "reconnecting\n");
      return Action::Reconnect;
    }
    // The payload can dwarf one tick; widen the timeout for the bulk
    // read, then restore the tailing cadence.
    Client.setRecvTimeoutMs(10000);
    std::vector<uint8_t> Bytes;
    Status Read = Client.recvBytes(static_cast<size_t>(N), Bytes);
    Client.setRecvTimeoutMs(Opts.TickMs);
    if (!Read) {
      std::fprintf(stderr,
                   "scserved: replication: snapshot transfer failed (%s); "
                   "reconnecting\n",
                   Read.message().c_str());
      return Action::Reconnect;
    }
    if (serve::GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size()) !=
        B) {
      // Corruption in transit, not divergence: the cursor is untouched so
      // the retry asks again.
      std::fprintf(stderr,
                   "scserved: replication: snapshot checksum mismatch in "
                   "transit; reconnecting\n");
      return Action::Reconnect;
    }
    Status Boot = Server.applyReplicaBootstrap(std::move(Bytes), B);
    if (!Boot) {
      if (Stop.load(std::memory_order_acquire))
        return Action::Stopped;
      std::fprintf(stderr,
                   "scserved: replication: bootstrap apply failed (%s); "
                   "reconnecting\n",
                   Boot.message().c_str());
      return Action::Reconnect;
    }
    Base = B;
    Seq = 0;
    Bootstraps->inc();
    std::fprintf(stderr,
                 "scserved: replication: bootstrapped from the primary "
                 "(base=%s, %" PRIu64 " bytes)\n",
                 serve::hexId(Base).c_str(), N);
    return Action::Continue;
  }
  std::fprintf(stderr,
               "scserved: replication: handshake refused (%.80s); "
               "retrying\n",
               Header.c_str());
  return Action::Reconnect;
}

void ReplicationClient::run() {
  unsigned Attempt = 0;
  bool Ever = false;
  while (!Stop.load(std::memory_order_acquire)) {
    LineClient Client;
    Status Linked = connect(Client);
    if (!Linked) {
      Connected->set(0);
      if (Stop.load(std::memory_order_acquire))
        break;
      if (Ever)
        Reconnects->inc();
      sleepBackoff(Attempt++);
      continue;
    }
    Action Shook = handshake(Client);
    if (Shook == Action::Stopped)
      break;
    if (Shook == Action::Reconnect) {
      Connected->set(0);
      {
        std::lock_guard<std::mutex> Lock(FdMutex);
        ActiveFd = -1;
      }
      if (Ever)
        Reconnects->inc();
      sleepBackoff(Attempt++);
      continue;
    }
    Connected->set(1);
    Attempt = 0;
    Ever = true;
    LastMsgMs = steadyNowMs();
    Action Next = Action::Continue;
    while (Next == Action::Continue && !Stop.load(std::memory_order_acquire)) {
      std::string Line;
      Status Got = Client.recvLine(Line);
      if (!Got) {
        if (Got.code() == ErrorCode::Timeout) {
          LagMs->set(steadyNowMs() - LastMsgMs);
          continue;
        }
        if (!Stop.load(std::memory_order_acquire))
          std::fprintf(stderr,
                       "scserved: replication: link lost (%s); "
                       "reconnecting\n",
                       Got.message().c_str());
        Next = Action::Reconnect;
        break;
      }
      Next = handleLine(Client, Line);
    }
    Connected->set(0);
    {
      std::lock_guard<std::mutex> Lock(FdMutex);
      ActiveFd = -1;
    }
    if (Next == Action::Stopped)
      break;
  }
  Connected->set(0);
  {
    std::lock_guard<std::mutex> Lock(FdMutex);
    ActiveFd = -1;
  }
}

Status ReplicationClient::coldBootstrap(const std::string &TcpSpec,
                                        const std::string &UnixPath,
                                        const std::string &SnapshotPath,
                                        uint64_t DeadlineMs) {
  if (FailPoint::hit("repl.bootstrap") == FailPoint::Mode::Error)
    return FailPoint::injectedError("repl.bootstrap")
        .withContext("cold bootstrap");
  LineClient Client;
  Status Linked =
      TcpSpec.empty() ? Client.connectUnixWithBackoff(UnixPath, DeadlineMs)
                      : Client.connectTcpWithBackoff(TcpSpec, DeadlineMs);
  if (!Linked)
    return Linked.withContext("cold bootstrap connect");
  Status Timed = Client.setRecvTimeoutMs(DeadlineMs ? DeadlineMs : 10000);
  if (!Timed)
    return Timed;
  Status Sent = Client.sendLine("replicate 0 0");
  if (!Sent)
    return Sent.withContext("cold bootstrap handshake");
  std::string Header;
  Status Got = Client.recvLine(Header);
  if (!Got)
    return Got.withContext("cold bootstrap handshake");
  std::vector<std::string> F = splitFields(Header, 4);
  if (F.size() < 4 || F[0] != "ok" || F[1] != "snapshot")
    return Status::error(ErrorCode::Internal,
                         "primary did not offer a snapshot: " + Header);
  uint64_t B = 0, N = 0;
  if (!parseHexU64(F[2], B) || !parseDecU64(F[3], N))
    return Status::error(ErrorCode::Internal,
                         "malformed snapshot header: " + Header);
  std::vector<uint8_t> Bytes;
  Status Read = Client.recvBytes(static_cast<size_t>(N), Bytes);
  if (!Read)
    return Read.withContext("cold bootstrap transfer");
  if (serve::GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size()) != B)
    return Status::error(ErrorCode::Corruption,
                         "bootstrap snapshot checksum mismatch in transit");
  Status Wrote = writeFileAtomic(SnapshotPath, Bytes);
  if (!Wrote)
    return Wrote.withContext("cold bootstrap write");
  std::fprintf(stderr,
               "scserved: replication: bootstrapped from the primary "
               "(base=%s, %" PRIu64 " bytes)\n",
               serve::hexId(B).c_str(), N);
  return Status();
}
