file(REMOVE_RECURSE
  "libpoce_support.a"
)
