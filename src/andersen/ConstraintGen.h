//===- andersen/ConstraintGen.h - Andersen constraint generation -*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates inclusion constraints for Andersen's points-to analysis from a
/// MiniC AST (Section 3 of the paper, constraint rules of Figure 6 and
/// [FA97]).
///
/// Encoding. Every abstract memory location l (variable, parameter,
/// function, heap allocation site, string literal) is modeled by the term
///
///     ref(name_l, X_l, ~X_l)
///
/// where name_l is a nullary constructor unique to l, X_l is the set
/// variable holding l's contents (covariant: the range of the "get"
/// method), and the third, contravariant argument is the domain of the
/// "set" method. Reading an unknown location set tau into a fresh T uses
/// the sink tau <= ref(1, T, ~0); writing T into tau uses
/// tau <= ref(1, 1, ~T), which by contravariance yields T <= X_l for every
/// location l in tau.
///
/// Every expression evaluates to a set expression denoting its *L-value
/// set* (the locations the expression may designate), avoiding separate
/// L/R rules exactly as the paper does. R-values are wrapped back into
/// L-value form with the pseudo-location ref(0, V, ~1).
///
/// Functions are values: a function f with n parameters contributes
/// lamN(~X_p1, ..., ~X_pn, R_f) to the contents of f's location, where the
/// contravariant arguments are the parameter locations' content variables
/// and R_f collects returned r-values. A call e(a1..an) reads the callee
/// location set into C and constrains C <= lamN(~A1, ..., ~An, Ret).
/// Structurally mismatched flows (e.g. calling a data pointer, arity
/// mismatches at varargs calls) are ignored, the standard treatment of
/// ill-typed C.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_ANDERSEN_CONSTRAINTGEN_H
#define POCE_ANDERSEN_CONSTRAINTGEN_H

#include "minic/AST.h"
#include "setcon/ConstraintSolver.h"
#include "support/DenseU64Map.h"

#include <map>
#include <string>
#include <vector>

namespace poce {
namespace andersen {

/// Dense id of an abstract memory location.
using LocationId = uint32_t;

/// Kinds of abstract locations.
enum class LocationKind : uint8_t {
  Global,
  Local,
  Param,
  Function,
  Heap,
  StringLit,
};

/// One abstract memory location.
struct Location {
  std::string Name; ///< Unique qualified name, e.g. "main.p", "heap@12".
  LocationKind Kind = LocationKind::Global;
  VarId Content = 0;   ///< X_l: the location's points-to contents.
  ExprId RefTerm = 0;  ///< ref(name_l, X_l, ~X_l).
  bool IsArray = false;
};

/// Walks a MiniC translation unit and emits Andersen constraints into a
/// solver. One generator instance drives one solver run; generation is
/// deterministic, so repeated runs over the same AST issue identical
/// freshVar/addConstraint sequences (the property oracle construction
/// relies on).
class ConstraintGenerator {
public:
  explicit ConstraintGenerator(ConstraintSolver &Solver);

  /// Generates constraints for the whole translation unit.
  void run(const minic::TranslationUnit &Unit);

  const std::vector<Location> &locations() const { return Locations; }

  /// Maps a ref term back to its location; NotFound if \p Term is not a
  /// location's ref term.
  LocationId locationOfRefTerm(ExprId Term) const;

  /// Looks up a location by its qualified name; NotFound if absent.
  LocationId locationByName(const std::string &Name) const;

  static constexpr LocationId NotFound = ~0U;

private:
  //===--------------------------------------------------------------------===
  // Locations and scopes
  //===--------------------------------------------------------------------===
  LocationId createLocation(const std::string &Name, LocationKind Kind,
                            bool IsArray);
  LocationId lookupOrCreateIdent(const std::string &Name);
  void bindLocal(const std::string &Name, LocationId Loc);
  void pushScope();
  void popScope();

  //===--------------------------------------------------------------------===
  // Constraint helpers
  //===--------------------------------------------------------------------===
  /// Fresh set variable with a diagnostic name.
  VarId freshVar(const char *Hint);
  /// Reads the r-values of L-value set \p LValues into a fresh variable.
  VarId readInto(ExprId LValues);
  /// The r-value set of \p LValues. When the L-value set is statically a
  /// single ref term (a known location or a wrapped r-value), the term's
  /// covariant "get" argument is returned directly — the standard
  /// short-circuit for trivial copies, which keeps constraint cycles short
  /// (direct X <= Y edges) instead of threading every copy through a fresh
  /// temporary. Otherwise reads through a ref(1, T, ~0) sink.
  ExprId rvalueOf(ExprId LValues);
  /// Writes set expression \p Value into every location of \p LValues
  /// (short-circuiting statically known single locations).
  void writeInto(ExprId LValues, ExprId Value);
  /// Wraps r-value set \p Value as a pseudo L-value set ref(0, V, ~1).
  ExprId wrapRValue(ExprId Value);

  //===--------------------------------------------------------------------===
  // Declarations, statements, expressions
  //===--------------------------------------------------------------------===
  struct FunctionInfo {
    LocationId Loc = 0;
    std::vector<LocationId> Params;
    VarId Return = 0;
    bool Variadic = false;
    bool HasBody = false;
  };

  FunctionInfo &declareFunction(const minic::FunctionDecl *FD);
  void generateFunctionBody(const minic::FunctionDecl *FD);
  void generateVarDecl(const minic::VarDecl *VD, bool IsLocal);
  void generateInitInto(LocationId Target, const minic::Expr *Init);
  void generateStmt(const minic::Stmt *S);

  /// Evaluates \p E to its L-value set.
  ExprId generateExpr(const minic::Expr *E);
  ExprId generateCall(const minic::CallExpr *Call);
  ExprId generateUnary(const minic::UnaryExpr *Unary);

  bool isAllocatorName(const std::string &Name) const;

  ConstraintSolver &Solver;
  TermTable &Terms;
  ConsId RefCons;

  std::vector<Location> Locations;
  DenseU64Map<LocationId> RefTermToLocation;
  std::map<std::string, LocationId> GlobalScope;
  std::vector<std::map<std::string, LocationId>> LocalScopes;
  std::map<std::string, FunctionInfo> Functions;
  std::map<std::string, LocationId> NameIndex;

  const FunctionInfo *CurrentFunction = nullptr;
  std::string CurrentFunctionName;
  uint32_t NextHeapId = 0;
  uint32_t NextStringId = 0;
  uint32_t NextLocalUniquifier = 0;
  uint32_t NextTempId = 0;
};

} // namespace andersen
} // namespace poce

#endif // POCE_ANDERSEN_CONSTRAINTGEN_H
