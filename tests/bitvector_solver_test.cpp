//===- tests/bitvector_solver_test.cpp - Bitvector LS equivalence ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that the bitvector-backed least solutions and standard-form
/// difference propagation compute exactly what the seed's vector-backed
/// algorithms computed: every configuration is cross-checked against
/// ConstraintSolver::referenceLeastSolutions() (the pre-bitvector
/// concat+sort+unique pass, retained as an oracle) on random constraint
/// systems, difference propagation is compared against the element-wise
/// path, and the inductive-form order invariant the least-solution pass
/// relies on is verified as a real test instead of only an assert.
///
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintSolver.h"
#include "support/PRNG.h"
#include "workload/RandomConstraints.h"

#include <gtest/gtest.h>

using namespace poce;

namespace {

struct Case {
  uint64_t Seed;
  uint32_t NumVars;
  uint32_t NumCons;
  double Density;
};

const Case Shapes[] = {
    {21, 12, 8, 1.0},  {22, 40, 26, 1.5}, {23, 40, 26, 3.0},
    {24, 80, 50, 1.0}, {25, 120, 80, 2.0}, {26, 200, 130, 1.2},
    {27, 60, 0, 2.5},  {28, 150, 100, 0.6},
};

std::vector<SolverOptions> variants(uint64_t Seed) {
  std::vector<SolverOptions> Out;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive})
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online})
      for (bool Diff : {true, false}) {
        SolverOptions Options = makeConfig(Form, Elim, Seed);
        Options.DiffProp = Diff;
        Out.push_back(Options);
      }
  return Out;
}

/// Runs one solve over \p Shape and asserts the bitvector-backed API
/// agrees with the reference algorithm on every variable.
void checkAgainstReference(const RandomConstraintShape &Shape,
                           const SolverOptions &Options) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options);
  workload::emitRandomConstraints(Shape, Solver);

  std::vector<std::vector<ExprId>> Reference =
      Solver.referenceLeastSolutions();
  Solver.finalize();
  for (VarId Var = 0; Var != Solver.numVars(); ++Var) {
    VarId Rep = Solver.rep(Var);
    const std::vector<ExprId> &LS = Solver.leastSolution(Var);
    ASSERT_EQ(LS, Reference[Rep])
        << Options.configName() << (Options.DiffProp ? "+diff" : "-diff")
        << " var " << Var;
    EXPECT_EQ(Solver.leastSolutionBits(Var).count(), LS.size());
  }
  EXPECT_TRUE(Solver.verifyGraphInvariants()) << Options.configName();
}

} // namespace

class BitvectorLSTest : public testing::TestWithParam<Case> {};

TEST_P(BitvectorLSTest, MatchesReferenceAcrossConfigs) {
  const Case &C = GetParam();
  PRNG Rng(C.Seed);
  RandomConstraintShape Shape =
      randomConstraintShape(C.NumVars, C.NumCons, C.Density / C.NumVars, Rng);
  for (const SolverOptions &Options : variants(C.Seed))
    checkAgainstReference(Shape, Options);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BitvectorLSTest, testing::ValuesIn(Shapes),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param.Seed) +
                                  "_n" +
                                  std::to_string(Info.param.NumVars);
                         });

//===----------------------------------------------------------------------===//
// Difference propagation vs. element-wise propagation
//===----------------------------------------------------------------------===//

TEST(DiffPropTest, MatchesElementwiseCountersWithoutCollapses) {
  // Absent collapses, standard-form closure work is confluent: the batched
  // scheme must reproduce the element-wise counters bit for bit, not just
  // the solutions.
  for (const Case &C : Shapes) {
    PRNG Rng(C.Seed * 31);
    RandomConstraintShape Shape = randomConstraintShape(
        C.NumVars, C.NumCons, C.Density / C.NumVars, Rng);
    SolverStats Counters[2];
    for (bool Diff : {false, true}) {
      ConstructorTable Constructors;
      TermTable Terms(Constructors);
      SolverOptions Options =
          makeConfig(GraphForm::Standard, CycleElim::None, C.Seed);
      Options.DiffProp = Diff;
      ConstraintSolver Solver(Terms, Options);
      workload::emitRandomConstraints(Shape, Solver);
      Solver.finalize();
      Counters[Diff] = Solver.stats();
    }
    EXPECT_EQ(Counters[0].Work, Counters[1].Work) << C.Seed;
    EXPECT_EQ(Counters[0].RedundantAdds, Counters[1].RedundantAdds) << C.Seed;
    EXPECT_EQ(Counters[0].InitialEdges, Counters[1].InitialEdges) << C.Seed;
    EXPECT_EQ(Counters[0].SelfEdges, Counters[1].SelfEdges) << C.Seed;
    EXPECT_EQ(Counters[0].DistinctSources, Counters[1].DistinctSources)
        << C.Seed;
    // Only the batched run reports delta-propagation activity.
    EXPECT_EQ(Counters[0].DeltaPropagations, 0u);
  }
}

TEST(DiffPropTest, PruningIsObservable) {
  // A diamond re-delivers the same source along parallel paths: the
  // redundant deliveries must show up as pruned propagations.
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::None);
  ConstraintSolver Solver(Terms, Options);
  ExprId S = Terms.cons(Constructors.getOrCreate("s", {}), {});
  VarId A = Solver.freshVar("a");
  VarId B = Solver.freshVar("b");
  VarId C = Solver.freshVar("c");
  VarId D = Solver.freshVar("d");
  for (auto [X, Y] : {std::pair{A, B}, {A, C}, {B, D}, {C, D}})
    Solver.addConstraint(Terms.var(X), Terms.var(Y));
  Solver.addConstraint(S, Terms.var(A));
  Solver.finalize();
  EXPECT_GT(Solver.stats().DeltaPropagations, 0u);
  EXPECT_GT(Solver.stats().PropagationsPruned, 0u);
  EXPECT_EQ(Solver.stats().RedundantAdds, 1u); // Second arrival at D.
  EXPECT_EQ(Solver.leastSolution(D).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Inductive-form order invariant (previously guarded only by an assert)
//===----------------------------------------------------------------------===//

TEST(GraphInvariantTest, InductiveOrderHoldsOnCollapseHeavyGraphs) {
  // Dense cyclic systems exercise collapses, stale entries, and re-added
  // edges — the cases where a broken representation would leave a
  // predecessor with a larger order than its owner.
  for (uint64_t Seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    PRNG Rng(Seed);
    RandomConstraintShape Shape =
        randomConstraintShape(100, 60, 4.0 / 100, Rng);
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(
        Terms, makeConfig(GraphForm::Inductive, CycleElim::Online, Seed));
    workload::emitRandomConstraints(Shape, Solver);
    EXPECT_TRUE(Solver.verifyGraphInvariants()) << Seed;
    EXPECT_GT(Solver.stats().CyclesCollapsed, 0u) << Seed;
    // The invariant also survives compaction.
    Solver.compact();
    EXPECT_TRUE(Solver.verifyGraphInvariants()) << Seed;
  }
}

TEST(GraphInvariantTest, StandardFormPredsHoldSourcesOnly) {
  for (bool Diff : {true, false}) {
    PRNG Rng(7);
    RandomConstraintShape Shape = randomConstraintShape(80, 50, 2.0 / 80, Rng);
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options =
        makeConfig(GraphForm::Standard, CycleElim::Online, 7);
    Options.DiffProp = Diff;
    ConstraintSolver Solver(Terms, Options);
    workload::emitRandomConstraints(Shape, Solver);
    EXPECT_TRUE(Solver.verifyGraphInvariants());
  }
}

//===----------------------------------------------------------------------===//
// Lazy sorted-view cache
//===----------------------------------------------------------------------===//

TEST(LazyViewTest, ViewIsCachedAndInvalidated) {
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, makeConfig(GraphForm::Inductive,
                                            CycleElim::Online));
  ExprId S1 = Terms.cons(Constructors.getOrCreate("s1", {}), {});
  ExprId S2 = Terms.cons(Constructors.getOrCreate("s2", {}), {});
  VarId X = Solver.freshVar("x");
  Solver.addConstraint(S1, Terms.var(X));

  const std::vector<ExprId> &First = Solver.leastSolution(X);
  EXPECT_EQ(First.size(), 1u);
  // Repeated queries return the cached view.
  EXPECT_EQ(&Solver.leastSolution(X), &First);

  // A new constraint invalidates and the next query sees the new source.
  Solver.addConstraint(S2, Terms.var(X));
  EXPECT_EQ(Solver.leastSolution(X).size(), 2u);
  EXPECT_EQ(Solver.leastSolutionBits(X).count(), 2u);
}
