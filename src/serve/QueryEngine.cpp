//===- serve/QueryEngine.cpp - Queries over a warm solver -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "serve/QueryEngine.h"

#include "serve/Wal.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstring>

using namespace poce;
using namespace poce::serve;

namespace {

/// Time spent materializing a query view (cache miss or stale rebuild).
Histogram &viewBuildHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_query_view_build_us",
      "Microseconds to build an ls/pts view (cache misses and rebuilds)");
  return H;
}

} // namespace

QueryEngine::QueryEngine(SolverBundle InBundle, size_t CacheCapacity)
    : Bundle(std::move(InBundle)), Cache(CacheCapacity) {
  if (!Bundle.Solver) {
    InitError = "empty solver bundle";
    return;
  }
  Status Adopt = System.adoptDeclarations(*Bundle.Solver);
  if (!Adopt) {
    InitError = Adopt.message();
    return;
  }
  Valid = true;
  // The base capture drains the worklist (serialize() solves first), so a
  // bundle handed over mid-solve settles here before the first query.
  Status Base = GraphSnapshot::serialize(*Bundle.Solver, BaseBytes);
  RollbackArmed = Base.ok();
  if (!RollbackArmed)
    BaseBytes.clear();
}

uint32_t QueryEngine::varOf(const std::string &Name) const {
  uint32_t Index = System.varIndex(Name);
  if (Index == ConstraintSystemFile::NotFound ||
      Index >= Bundle.Solver->numCreations())
    return NotFound;
  return Bundle.Solver->varOfCreation(Index);
}

std::string render::locationTag(const ConstraintSolver &Solver,
                                ExprId Term) {
  const TermTable &Terms = Solver.terms();
  if (Terms.kind(Term) == ExprKind::Cons) {
    const ConstructorTable &Cons = Terms.constructors();
    ConsId C = Terms.consOf(Term);
    if (Cons.signature(C).arity() == 0)
      return Cons.signature(C).Name;
    // ref(l, get, set)-shaped terms: the first argument is the location
    // name constructor.
    ExprId First = Terms.argsOf(Term)[0];
    if (Terms.kind(First) == ExprKind::Cons &&
        Cons.signature(Terms.consOf(First)).arity() == 0)
      return Cons.signature(Terms.consOf(First)).Name;
  }
  return Solver.exprStr(Term);
}

std::vector<std::string>
render::lsItems(const ConstraintSolver &Solver,
                const std::vector<ExprId> &Terms) {
  std::vector<std::string> Items;
  Items.reserve(Terms.size());
  for (ExprId Term : Terms)
    Items.push_back(Solver.exprStr(Term));
  return Items;
}

std::vector<std::string>
render::ptsItems(const ConstraintSolver &Solver,
                 const std::vector<ExprId> &Terms) {
  // Projection to tags can fold several terms onto one location; keep
  // the output sorted and deduplicated so responses are canonical.
  std::vector<std::string> Items;
  Items.reserve(Terms.size());
  for (ExprId Term : Terms)
    Items.push_back(locationTag(Solver, Term));
  std::sort(Items.begin(), Items.end());
  Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  return Items;
}

std::string render::renderSet(const std::vector<std::string> &Items) {
  std::string Out = "{";
  for (size_t I = 0; I != Items.size(); ++I)
    Out += (I ? ", " : " ") + Items[I];
  Out += Items.empty() ? "}" : " }";
  return Out;
}

const std::vector<std::string> &QueryEngine::view(ViewKind Kind, VarId Var) {
  ++Stats.Queries;
  ConstraintSolver &Solver = *Bundle.Solver;
  // Settle the graph before resolving the representative (a pending wave
  // closure may collapse Var into a class), and force the lazy finalize
  // before sampling the epoch — the inductive form's epoch bumps land at
  // finalize time, when recomputed solutions are diffed against their
  // previous values.
  Solver.ensureClosed();
  VarId Rep = Solver.rep(Var);
  (void)Solver.leastSolutionBits(Rep);
  uint64_t Epoch = Solver.mutationEpoch(Rep);
  uint64_t Key =
      (static_cast<uint64_t>(static_cast<uint8_t>(Kind)) << 32) | Rep;
  if (View *Cached = Cache.get(Key)) {
    if (Cached->Epoch == Epoch) {
      ++Stats.CacheHits;
      return Cached->Items;
    }
    ++Stats.StaleRebuilds;
  } else {
    ++Stats.CacheMisses;
  }

  const bool Timed = MetricsRegistry::timingEnabled() || trace::enabled();
  const uint64_t StartUs = Timed ? trace::nowMicros() : 0;
  View Fresh;
  Fresh.Epoch = Epoch;
  Fresh.Items = Kind == ViewKind::Ls
                    ? render::lsItems(Solver, Solver.leastSolution(Rep))
                    : render::ptsItems(Solver, Solver.leastSolution(Rep));
  Cache.put(Key, std::move(Fresh));
  if (Timed) {
    viewBuildHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("query.view_build", StartUs);
  }
  return Cache.get(Key)->Items;
}

const std::vector<std::string> &QueryEngine::ls(VarId Var) {
  return view(ViewKind::Ls, Var);
}

const std::vector<std::string> &QueryEngine::pts(VarId Var) {
  return view(ViewKind::Pts, Var);
}

bool QueryEngine::alias(VarId X, VarId Y) {
  ++Stats.Queries;
  ConstraintSolver &Solver = *Bundle.Solver;
  if (Solver.rep(X) == Solver.rep(Y))
    return true;
  return Solver.leastSolutionBits(X).intersects(Solver.leastSolutionBits(Y));
}

Status QueryEngine::checkConstraint(const std::string &Line) const {
  if (!Valid)
    return Status::error(ErrorCode::FailedPrecondition,
                         "engine is invalid: " + InitError);
  return System.checkLine(Line, *Bundle.Solver);
}

Status QueryEngine::addConstraint(const std::string &Line) {
  if (!Valid)
    return Status::error(ErrorCode::FailedPrecondition,
                         "engine is invalid: " + InitError);
  Status St = System.addLine(Line, *Bundle.Solver);
  if (!St)
    return St;
  // Wave closure defers consequences until a solution is needed; force
  // them now so a budget breach surfaces (and rolls back) at the add that
  // caused it, exactly as in worklist mode. No-op for worklist closure.
  Bundle.Solver->ensureClosed();
  if (Bundle.Solver->stats().Aborted) {
    ++Stats.BudgetAborts;
    SolverStats::AbortReason Why = Bundle.Solver->stats().Abort;
    Status Restored = rollback();
    if (!Restored)
      return Status::error(
          ErrorCode::Internal,
          std::string("budget breach (") + SolverStats::abortReasonName(Why) +
              ") could not be rolled back: " + Restored.message());
    ++Stats.Rollbacks;
    return Status::error(ErrorCode::BudgetExceeded,
                         std::string(SolverStats::abortReasonName(Why)) +
                             " budget exceeded; batch rolled back");
  }
  AcceptedLines.push_back(Line);
  ++Stats.Additions;
  return Status();
}

Status QueryEngine::checkRetract(const std::string &Line,
                                 std::string *Canon) const {
  if (!Valid)
    return Status::error(ErrorCode::FailedPrecondition,
                         "engine is invalid: " + InitError);
  std::string Text;
  Status St = System.canonicalizeConstraint(Line, *Bundle.Solver, Text);
  if (!St)
    return St;
  if (!Bundle.Solver->hasRootTag(Text))
    return Status::error(ErrorCode::NotFound,
                         "no live constraint '" + Text + "' to retract");
  if (Canon)
    *Canon = std::move(Text);
  return Status();
}

Status QueryEngine::retractConstraint(const std::string &Line) {
  if (!Valid)
    return Status::error(ErrorCode::FailedPrecondition,
                         "engine is invalid: " + InitError);
  std::string Canon;
  Status St = System.canonicalizeConstraint(Line, *Bundle.Solver, Canon);
  if (!St)
    return St;
  if (!Bundle.Solver->retract(Canon))
    return Status::error(ErrorCode::NotFound,
                         "no live constraint '" + Canon + "' to retract");
  // The cone replay runs under the live budgets (a retraction can
  // trigger arbitrary re-propagation); a breach rolls the whole batch
  // back, exactly as for an addition.
  Bundle.Solver->ensureClosed();
  if (Bundle.Solver->stats().Aborted) {
    ++Stats.BudgetAborts;
    SolverStats::AbortReason Why = Bundle.Solver->stats().Abort;
    Status Restored = rollback();
    if (!Restored)
      return Status::error(
          ErrorCode::Internal,
          std::string("budget breach (") + SolverStats::abortReasonName(Why) +
              ") could not be rolled back: " + Restored.message());
    ++Stats.Rollbacks;
    return Status::error(ErrorCode::BudgetExceeded,
                         std::string(SolverStats::abortReasonName(Why)) +
                             " budget exceeded; batch rolled back");
  }
  // The system records only constraints added through this engine —
  // adoptDeclarations() cleared the pre-existing ones, for which the
  // solver's base-root provenance is authoritative — so removal here is
  // best-effort.
  (void)System.removeConstraint(Canon);
  AcceptedLines.push_back(WalRetractPrefix + Canon);
  ++Stats.Retractions;
  return Status();
}

Status QueryEngine::rollback() {
  if (!RollbackArmed)
    return Status::error(ErrorCode::FailedPrecondition,
                         "no rollback base (solver was not serializable)");

  // The live solver's budgets win over whatever the base snapshot
  // recorded (callers may have re-armed them since the base was taken).
  const SolverOptions Live = Bundle.Solver->options();

  SolverBundle Rebuilt;
  Status Load =
      GraphSnapshot::deserialize(BaseBytes.data(), BaseBytes.size(), Rebuilt);
  if (!Load)
    return Load.withContext("rebuilding pre-batch solver");

  // The journal was accepted under budgets; replaying it is not a new
  // batch, so budgets are off for the duration.
  ConstraintSolver &Fresh = *Rebuilt.Solver;
  Fresh.setBudgets(0, 0, 0);

  ConstraintSystemFile Replayed;
  Status Adopt = Replayed.adoptDeclarations(Fresh);
  if (!Adopt)
    return Adopt.withContext("re-adopting declarations during rollback");
  constexpr size_t PrefixLen = sizeof(WalRetractPrefix) - 1;
  for (const std::string &Line : AcceptedLines) {
    if (Line.compare(0, PrefixLen, WalRetractPrefix) == 0) {
      // Journaled retractions store the canonical text, so they apply
      // directly — each matched a live constraint when first accepted.
      std::string Canon = Line.substr(PrefixLen);
      if (!Fresh.retract(Canon))
        return Status::error(ErrorCode::Internal,
                             "journal retraction '" + Canon +
                                 "' did not match during rollback");
      (void)Replayed.removeConstraint(Canon);
    } else {
      Status St = Replayed.addLine(Line, Fresh);
      if (!St)
        return St.withContext("replaying journal line '" + Line + "'");
    }
    if (Fresh.stats().Aborted)
      return Status::error(ErrorCode::Internal,
                           "journal replay aborted with budgets disabled");
  }
  Fresh.setBudgets(Live.DeadlineMs, Live.MaxEdgeBudget, Live.MaxMemBytes);
  Fresh.setClosure(Live.Closure, Live.WaveSoA);
  Fresh.setPreprocess(Live.Preprocess);

  Bundle = std::move(Rebuilt);
  System = std::move(Replayed);
  Cache.clear();
  return Status();
}

Status QueryEngine::resetFromSnapshot(const uint8_t *Data, size_t Size) {
  SolverBundle Rebuilt;
  Status Load = GraphSnapshot::deserialize(Data, Size, Rebuilt);
  if (!Load)
    return Load.withContext("rebuilding from replacement snapshot");
  ConstraintSystemFile Adopted;
  Status Adopt = Adopted.adoptDeclarations(*Rebuilt.Solver);
  if (!Adopt)
    return Adopt.withContext("adopting replacement snapshot declarations");
  Bundle = std::move(Rebuilt);
  System = std::move(Adopted);
  Cache.clear();
  AcceptedLines.clear();
  BaseBytes.assign(Data, Data + Size);
  RollbackArmed = true;
  Valid = true;
  InitError.clear();
  return Status();
}

Status QueryEngine::checkpointBase() {
  if (!Valid)
    return Status::error(ErrorCode::FailedPrecondition,
                         "engine is invalid: " + InitError);
  std::vector<uint8_t> Fresh;
  Status St = GraphSnapshot::serialize(*Bundle.Solver, Fresh);
  if (!St)
    return St.withContext("checkpointing rollback base");
  BaseBytes = std::move(Fresh);
  AcceptedLines.clear();
  RollbackArmed = true;
  return Status();
}
