#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md): configure, build, and run the full
# test suite in one command. Extra arguments are passed to ctest.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$ROOT/build"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j
cd "$BUILD"
exec ctest --output-on-failure -j "$@"
