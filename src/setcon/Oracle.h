//===- setcon/Oracle.h - Perfect cycle elimination oracle -------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle of the paper's *-Oracle experiments: "Whenever a fresh set
/// variable is created, the oracle predicts to which strongly connected
/// component the variable will eventually belong. We substitute the
/// witness variable of that component for the fresh variable." The
/// resulting graphs are acyclic, giving a lower bound on the cost any
/// cycle-elimination strategy can reach.
///
/// buildOracle() constructs the prediction by replaying constraint
/// generation: a recording IF-Online pass discovers the variable-variable
/// constraint relation; strongly connected components of that relation are
/// the equality classes; further recording passes with the partial oracle
/// catch cycles only exposed once earlier classes are merged. Iteration
/// stops at a fixpoint (almost always after the second pass).
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_ORACLE_H
#define POCE_SETCON_ORACLE_H

#include "setcon/SolverOptions.h"
#include "support/UnionFind.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace poce {

class ConstraintSolver;
class ConstructorTable;
class TermTable;

/// Predicts the final equality class of every fresh-variable request.
/// Indices are creation indices (the N-th freshVar() call has index N-1),
/// which are stable across solver configurations because constraint
/// generation is deterministic.
class Oracle {
public:
  /// The witness (earliest-created member) of \p CreationIndex's class.
  uint32_t witness(uint32_t CreationIndex) const {
    return CreationIndex < WitnessOf.size() ? WitnessOf[CreationIndex]
                                            : CreationIndex;
  }

  uint32_t numCreations() const {
    return static_cast<uint32_t>(WitnessOf.size());
  }

  /// Ground-truth cycle statistics of the final constraint relation.
  uint32_t numNontrivialClasses() const { return NontrivialClasses; }
  uint32_t varsInNontrivialClasses() const { return VarsInNontrivial; }
  uint32_t maxClassSize() const { return MaxClass; }
  /// Variables a perfect eliminator removes: sum of (size - 1) over
  /// non-trivial classes.
  uint32_t eliminableVars() const {
    return VarsInNontrivial - NontrivialClasses;
  }

  /// Builds an oracle directly from equality classes over creation
  /// indices.
  static Oracle fromClasses(UnionFind &Classes);

private:
  std::vector<uint32_t> WitnessOf;
  uint32_t NontrivialClasses = 0;
  uint32_t VarsInNontrivial = 0;
  uint32_t MaxClass = 0;
};

/// Callback that replays constraint generation against a solver. It must
/// be deterministic: every invocation performs the same sequence of
/// freshVar() and addConstraint() calls (modulo oracle witness
/// substitution, which is transparent to the caller).
using GeneratorFn = std::function<void(ConstraintSolver &)>;

/// Constructs the oracle for \p Generate. \p BaseOptions supplies the
/// variable-order seed (shared with the final measured runs so orders
/// agree). Returns the fixpoint oracle; \p MaxIterations bounds the
/// (rarely needed) refinement passes.
Oracle buildOracle(const GeneratorFn &Generate,
                   ConstructorTable &Constructors,
                   const SolverOptions &BaseOptions,
                   unsigned MaxIterations = 6);

} // namespace poce

#endif // POCE_SETCON_ORACLE_H
