#!/usr/bin/env bash
# Crash-recovery harness: kills scserved at the exact injection sites of
# the durability pipeline (failpoints in crash mode _exit(137) in place,
# simulating SIGKILL) and proves warm recovery for each torn state:
#
#   1. ack => durable: every `add` the crashed server acknowledged is an
#      intact record of the WAL (read back with --dump-wal).
#   2. durable => replayed: a recovered server (snapshot + WAL replay)
#      saves a snapshot bit-identical to an oracle server that loads the
#      same snapshot and is fed the WAL's lines by hand.
#
# Also checks the resource budgets: a breached add answers
# `err budget_exceeded`, leaves no partial state behind, and the server
# keeps serving; an injected snapshot-save fault fails the request, not
# the process.
#
# Usage: scripts/crash_recovery.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSERVED="$BUILD_DIR/src/driver/scserved"
if [ ! -x "$SCSERVED" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scserved
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Base snapshot: the solved swap system.
BASE="$WORK/base.snap"
"$SCSERVED" --config=if-online examples/data/swap.scs > "$WORK/base.out" << EOF
save $BASE
quit
EOF
grep -q "ok saved $BASE" "$WORK/base.out" || fail "could not create base snapshot"

# crash_scenario NAME FAILPOINTS REQUEST...
# Runs a server on a private copy of the base snapshot plus a fresh WAL,
# with FAILPOINTS armed, feeding it REQUESTs until the armed crash kills
# it; then runs the two recovery assertions above.
crash_scenario() {
  local name=$1 failpoints=$2
  shift 2
  local snap="$WORK/$name.snap" wal="$WORK/$name.wal"
  cp "$BASE" "$snap"
  printf '%s\n' "$@" > "$WORK/$name.req"

  set +e
  POCE_FAILPOINTS="$failpoints" "$SCSERVED" --snapshot="$snap" --wal="$wal" \
    < "$WORK/$name.req" > "$WORK/$name.out" 2> "$WORK/$name.err"
  local code=$?
  set -e
  [ "$code" -eq 137 ] || fail "$name: expected crash exit 137, got $code"

  # ack => durable: acks are issued in request order, so the first K add
  # lines (K = acks seen before the crash) must all be intact records.
  local acked
  acked=$(grep -c '^ok added$' "$WORK/$name.out" || true)
  "$SCSERVED" --dump-wal="$wal" \
    > "$WORK/$name.wal_lines" 2> "$WORK/$name.wal_err"
  local i=0 req line
  for req in "$@"; do
    case "$req" in
    "add "*) ;;
    *) continue ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt "$acked" ]; then
      break
    fi
    line=${req#add }
    grep -qxF -- "$line" "$WORK/$name.wal_lines" ||
      fail "$name: acknowledged line '$line' lost from the WAL"
  done

  # durable => replayed: warm recovery must reconstruct exactly the state
  # an oracle reaches by feeding the WAL's lines to the bare snapshot.
  "$SCSERVED" --snapshot="$snap" --wal="$wal" > "$WORK/$name.rec.out" << EOF
save $WORK/$name.recovered.snap
quit
EOF
  grep -q "^ok ready" "$WORK/$name.rec.out" ||
    fail "$name: recovered server did not come up"
  grep -q "ok saved" "$WORK/$name.rec.out" ||
    fail "$name: recovered server could not snapshot"

  {
    while IFS= read -r line; do
      echo "add $line"
    done < "$WORK/$name.wal_lines"
    echo "save $WORK/$name.oracle.snap"
    echo "quit"
  } | "$SCSERVED" --snapshot="$snap" > "$WORK/$name.oracle.out"
  grep -q "ok saved" "$WORK/$name.oracle.out" ||
    fail "$name: oracle session failed"
  cmp -s "$WORK/$name.recovered.snap" "$WORK/$name.oracle.snap" ||
    fail "$name: recovered state differs from the snapshot+WAL oracle"
  echo "crash_recovery: $name OK (acked=$acked, wal_lines=$(wc -l < "$WORK/$name.wal_lines"))"
}

# Crash before any record bytes: the in-flight line is simply absent.
crash_scenario pre_append "wal.append.pre=crash@2" \
  "add var Z" "add P <= Z"

# Crash between the two halves of a record: a genuinely torn tail that
# replay must detect and reopening must truncate.
crash_scenario mid_append "wal.append.mid=crash@2" \
  "add var Z" "add P <= Z"
grep -q "torn" "$WORK/mid_append.wal_err" ||
  fail "mid_append: --dump-wal did not report the torn tail"

# Crash inside the closure loop while applying an already-logged add: the
# line is durable but unacknowledged, and recovery legitimately includes
# it (the invariant is ack => durable, not the converse).
crash_scenario mid_solve "solver.step=crash@1" \
  "add var Z" "add P <= Z"

# Crash between writing the checkpoint's temp snapshot and renaming it
# over the real one: the old snapshot must still be intact and the WAL
# must still hold every acknowledged line.
crash_scenario checkpoint_rename "atomic.before_rename=crash@1" \
  "add var Z" "add P <= Z" "checkpoint"

# Resource budgets: flooding `s` through a 64-variable chain breaches an
# edge budget of 1. The server must answer err budget_exceeded, roll the
# graph back (pts C63 stays empty), count the abort, and keep serving.
CHAIN="$WORK/chain.scs"
{
  echo "cons s"
  printf 'var'
  for i in $(seq 0 63); do printf ' C%d' "$i"; done
  echo
  for i in $(seq 0 62); do echo "C$i <= C$((i + 1))"; done
} > "$CHAIN"

"$SCSERVED" --config=if-online --edge-budget=1 "$CHAIN" \
  > "$WORK/budget.out" << EOF
add s <= C0
pts C63
stats
quit
EOF
grep -q "err budget_exceeded" "$WORK/budget.out" ||
  fail "budget: expected err budget_exceeded"
grep -q "ok {}" "$WORK/budget.out" ||
  fail "budget: aborted add leaked state into C63"
grep -q "budget_aborts=1 rollbacks=1" "$WORK/budget.out" ||
  fail "budget: stats did not count the abort and rollback"
grep -q "ok bye" "$WORK/budget.out" ||
  fail "budget: server died after the abort"

# Deadline budget liveness: with a deadline armed the add must answer
# promptly either way (this machine may finish the flood inside 100ms)
# and the server must keep serving.
"$SCSERVED" --config=if-online --deadline-ms=100 "$CHAIN" \
  > "$WORK/deadline.out" << EOF
add s <= C0
stats
quit
EOF
grep -Eq '^(ok added|err budget_exceeded)' "$WORK/deadline.out" ||
  fail "deadline: add was neither accepted nor budget-rejected"
grep -q "ok bye" "$WORK/deadline.out" ||
  fail "deadline: server died after the deadlined add"

# Crash between the checkpoint's snapshot rename and the WAL reset: the
# new snapshot is durable but the WAL still holds the acknowledged lines
# stamped with the OLD base id. Recovery must recognize the log as stale
# (its records are already contained in the renamed snapshot), skip it
# instead of double-applying, and end up bit-identical to an oracle that
# feeds the same lines to the ORIGINAL base.
CKPT_SNAP="$WORK/ckpt_reset.snap" CKPT_WAL="$WORK/ckpt_reset.wal"
cp "$BASE" "$CKPT_SNAP"
set +e
POCE_FAILPOINTS="checkpoint.before_wal_reset=crash@1" \
  "$SCSERVED" --snapshot="$CKPT_SNAP" --wal="$CKPT_WAL" \
  > "$WORK/ckpt_reset.out" 2> "$WORK/ckpt_reset.err" << EOF
add var Z
add P <= Z
checkpoint
EOF
code=$?
set -e
[ "$code" -eq 137 ] || fail "ckpt_reset: expected crash exit 137, got $code"
[ "$(grep -c '^ok added$' "$WORK/ckpt_reset.out")" -eq 2 ] ||
  fail "ckpt_reset: both adds should have been acknowledged pre-crash"
grep -q "^ok checkpoint" "$WORK/ckpt_reset.out" &&
  fail "ckpt_reset: checkpoint must not have been acknowledged"
# The acked lines are still durable (stale, but intact) in the WAL.
"$SCSERVED" --dump-wal="$CKPT_WAL" > "$WORK/ckpt_reset.wal_lines"
grep -qxF "var Z" "$WORK/ckpt_reset.wal_lines" &&
  grep -qxF "P <= Z" "$WORK/ckpt_reset.wal_lines" ||
  fail "ckpt_reset: acknowledged lines lost from the stale WAL"
# Recovery: the stale log is skipped, not replayed; the acked lines'
# effects are served from the renamed snapshot (P <= Z flooded P's
# points-to set into Z), and the state is bit-identical to recovering
# with no WAL at all — the semantics of "stale log == already applied".
"$SCSERVED" --snapshot="$CKPT_SNAP" --wal="$CKPT_WAL" \
  > "$WORK/ckpt_reset.rec.out" 2> "$WORK/ckpt_reset.rec.err" << EOF
pts Z
add var W
save $WORK/ckpt_reset.recovered.snap
quit
EOF
grep -q "^ok ready.*wal_replayed=0 wal_skipped=2" "$WORK/ckpt_reset.rec.out" ||
  fail "ckpt_reset: recovery did not skip exactly the 2 stale lines"
grep -q "stale" "$WORK/ckpt_reset.rec.err" ||
  fail "ckpt_reset: recovery did not warn about the stale WAL"
grep -q "ok { nx, ny }" "$WORK/ckpt_reset.rec.out" ||
  fail "ckpt_reset: the acknowledged adds' effects were lost"
grep -q "^ok added$" "$WORK/ckpt_reset.rec.out" ||
  fail "ckpt_reset: recovered server refused a fresh add"
grep -q "ok saved" "$WORK/ckpt_reset.rec.out" ||
  fail "ckpt_reset: recovered server could not snapshot"
{
  echo "pts Z"
  echo "add var W"
  echo "save $WORK/ckpt_reset.oracle.snap"
  echo "quit"
} | "$SCSERVED" --snapshot="$CKPT_SNAP" > "$WORK/ckpt_reset.oracle.out"
grep -q "ok saved" "$WORK/ckpt_reset.oracle.out" ||
  fail "ckpt_reset: oracle session failed"
cmp -s "$WORK/ckpt_reset.recovered.snap" "$WORK/ckpt_reset.oracle.snap" ||
  fail "ckpt_reset: recovering with the stale WAL differs from recovering without it"
# The re-stamped WAL now holds only the post-recovery add.
"$SCSERVED" --dump-wal="$CKPT_WAL" > "$WORK/ckpt_reset.wal_after"
[ "$(cat "$WORK/ckpt_reset.wal_after")" = "var W" ] ||
  fail "ckpt_reset: restamped WAL should hold exactly the fresh add"
echo "crash_recovery: ckpt_reset OK (stale lines skipped, state intact)"

# The same window without a crash: a checkpoint that fails after the
# snapshot rename must disable the WAL (no ack may land in a log that
# restart will discard) while queries keep serving, and a restart must
# recover cleanly.
DEG_SNAP="$WORK/degraded.snap" DEG_WAL="$WORK/degraded.wal"
cp "$BASE" "$DEG_SNAP"
POCE_FAILPOINTS="checkpoint.before_wal_reset=error" \
  "$SCSERVED" --snapshot="$DEG_SNAP" --wal="$DEG_WAL" \
  > "$WORK/degraded.out" 2> "$WORK/degraded.err" << EOF
add var Z
checkpoint
add var W
checkpoint
pts P
quit
EOF
grep -q "err io_error" "$WORK/degraded.out" ||
  fail "degraded: injected checkpoint fault did not surface"
grep -q "err failed_precondition" "$WORK/degraded.out" ||
  fail "degraded: add/checkpoint were not refused after WAL disable"
grep -q "^ok added$" "$WORK/degraded.out" || fail "degraded: first add failed"
grep -q "ok { nx, ny }" "$WORK/degraded.out" ||
  fail "degraded: queries stopped serving in degraded mode"
grep -q "disabling WAL" "$WORK/degraded.err" ||
  fail "degraded: no disable notice on stderr"
"$SCSERVED" --snapshot="$DEG_SNAP" --wal="$DEG_WAL" \
  > "$WORK/degraded.rec.out" 2> "$WORK/degraded.rec.err" << EOF
ls Z
quit
EOF
grep -q "^ok ready.*wal_skipped=1" "$WORK/degraded.rec.out" ||
  fail "degraded: restart did not skip the stale WAL line"
grep -q "^ok {" "$WORK/degraded.rec.out" ||
  fail "degraded: the acked variable Z was lost across restart"
echo "crash_recovery: degraded OK (WAL disabled, restart recovered)"

# A WAL file shorter than its header (crash during creation, or an
# operator's `: > wal`) holds no acknowledged record; the server must
# start it over instead of refusing to boot.
for torn in "" "POCE"; do
  TH_SNAP="$WORK/tornhdr.snap" TH_WAL="$WORK/tornhdr.wal"
  cp "$BASE" "$TH_SNAP"
  printf '%s' "$torn" > "$TH_WAL"
  "$SCSERVED" --snapshot="$TH_SNAP" --wal="$TH_WAL" \
    > "$WORK/tornhdr.out" 2> "$WORK/tornhdr.err" << EOF
add var Z
quit
EOF
  grep -q "^ok ready" "$WORK/tornhdr.out" ||
    fail "tornhdr: server refused to start on a torn WAL header"
  grep -q "^ok added$" "$WORK/tornhdr.out" ||
    fail "tornhdr: add failed after the header rewrite"
  "$SCSERVED" --dump-wal="$TH_WAL" > "$WORK/tornhdr.wal_lines"
  [ "$(cat "$WORK/tornhdr.wal_lines")" = "var Z" ] ||
    fail "tornhdr: rewritten WAL should hold exactly the fresh add"
done
echo "crash_recovery: tornhdr OK (torn header rewritten)"

# Validation before durability: a line that cannot apply is rejected
# before the WAL append, so no crash window can ever make an
# unreplayable line durable.
VAL_SNAP="$WORK/validate.snap" VAL_WAL="$WORK/validate.wal"
cp "$BASE" "$VAL_SNAP"
"$SCSERVED" --snapshot="$VAL_SNAP" --wal="$VAL_WAL" \
  > "$WORK/validate.out" << EOF
add this is !! garbage
add var P
add undeclared <= P
add var Z
quit
EOF
[ "$(grep -c '^err parse_error' "$WORK/validate.out")" -eq 3 ] ||
  fail "validate: the three bad lines were not all rejected"
grep -q "^ok added$" "$WORK/validate.out" || fail "validate: good add failed"
"$SCSERVED" --dump-wal="$VAL_WAL" > "$WORK/validate.wal_lines"
[ "$(cat "$WORK/validate.wal_lines")" = "var Z" ] ||
  fail "validate: a rejected line reached the WAL"
echo "crash_recovery: validate OK (only applicable lines become durable)"

# An injected snapshot-save fault fails the request, not the process, and
# leaves no file behind.
POCE_FAILPOINTS="snapshot.save=error" \
  "$SCSERVED" --config=if-online examples/data/swap.scs \
  > "$WORK/savefault.out" << EOF
save $WORK/savefault.snap
pts P
quit
EOF
grep -q "err io_error" "$WORK/savefault.out" ||
  fail "savefault: expected err io_error from the injected save fault"
grep -q "ok { nx, ny }" "$WORK/savefault.out" ||
  fail "savefault: server stopped serving after the failed save"
[ ! -e "$WORK/savefault.snap" ] ||
  fail "savefault: failed save left a file behind"

echo "crash_recovery: OK"
