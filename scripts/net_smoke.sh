#!/usr/bin/env bash
# End-to-end smoke of the socket serving layer: a scserved on a
# Unix-domain socket serving mixed concurrent clients (queries + adds via
# scnetcat), the graceful drain paths (shutdown verb, SIGTERM), and the
# durability story under a simulated kill -9 mid-batch — the crash is
# injected with the wal.append.mid failpoint (_exit(137) in place, the
# same SIGKILL stand-in the crash_recovery harness uses, so the cut
# lands deterministically inside a record). Warm recovery from the
# snapshot + torn WAL must be byte-identical to an oracle that replays
# the dumped WAL lines by hand.
#
# Usage: scripts/net_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSERVED="$BUILD_DIR/src/driver/scserved"
SCNETCAT="$BUILD_DIR/src/driver/scnetcat"
if [ ! -x "$SCSERVED" ] || [ ! -x "$SCNETCAT" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scserved scnetcat
fi

WORK=$(mktemp -d)
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Clients connect with scnetcat --retry-ms (jittered exponential backoff
# in net/Client.cpp) instead of polling the server's log for its
# listening line — no startup race, no fixed sleeps.
NC() { "$SCNETCAT" --retry-ms=10000 "$@"; }

# Base snapshot: the solved swap system (via stdin mode).
BASE="$WORK/base.snap"
"$SCSERVED" --config=if-online examples/data/swap.scs > "$WORK/base.out" << EOF
save $BASE
quit
EOF
grep -q "ok saved $BASE" "$WORK/base.out" || fail "could not create base snapshot"

#--- Mixed concurrent clients over a Unix socket --------------------------

SOCK="$WORK/poce.sock"
SNAP="$WORK/mixed.snap" WAL="$WORK/mixed.wal"
cp "$BASE" "$SNAP"
"$SCSERVED" --snapshot="$SNAP" --wal="$WAL" --unix="$SOCK" --net-lanes=2 \
  > "$WORK/mixed.srv.out" 2> "$WORK/mixed.srv.err" &
SRV=$!

# Two query clients and one writer client, concurrently. The writer's
# trailing query proves read-your-writes across the socket: its `ok
# added` ack precedes view publication, never follows it.
{ for _ in $(seq 25); do printf 'pts P\nalias P Q\nalias X Y\n'; done; } |
  NC --unix "$SOCK" > "$WORK/mixed.c1.out" &
C1=$!
{ for _ in $(seq 25); do printf 'pts P\nalias P Q\nalias X Y\n'; done; } |
  NC --unix "$SOCK" > "$WORK/mixed.c2.out" &
C2=$!
NC --unix "$SOCK" > "$WORK/mixed.w.out" << EOF
add var Z
add P <= Z
pts Z
EOF
wait "$C1" "$C2"

[ "$(grep -c '^ok { nx, ny }$' "$WORK/mixed.c1.out")" -eq 25 ] ||
  fail "mixed: query client 1 lost replies"
[ "$(grep -c '^ok true$' "$WORK/mixed.c2.out")" -eq 25 ] ||
  fail "mixed: query client 2 lost replies"
grep -q '^err' "$WORK/mixed.c1.out" "$WORK/mixed.c2.out" &&
  fail "mixed: a query client saw an error"
[ "$(grep -c '^ok added$' "$WORK/mixed.w.out")" -eq 2 ] ||
  fail "mixed: writer adds were not both acknowledged"
grep -q '^ok { nx, ny }$' "$WORK/mixed.w.out" ||
  fail "mixed: read-your-writes failed (pts Z after P <= Z)"

# The metrics verb serves the net series over the socket.
printf 'metrics\nquit\n' | NC --unix "$SOCK" > "$WORK/mixed.m.out"
grep -q 'poce_net_queries_total' "$WORK/mixed.m.out" ||
  fail "mixed: metrics reply lacks the net series"
grep -q 'poce_net_lane0_queries' "$WORK/mixed.m.out" ||
  fail "mixed: metrics reply lacks the per-lane counters"

# Graceful drain via the shutdown verb: exit 0, socket unlinked, and the
# acknowledged adds durable in the WAL.
printf 'shutdown\n' | NC --unix "$SOCK" > "$WORK/mixed.s.out"
grep -q '^ok shutting_down$' "$WORK/mixed.s.out" ||
  fail "mixed: shutdown verb not acknowledged"
wait "$SRV" && code=0 || code=$?
SRV=""
[ "$code" -eq 0 ] || fail "mixed: shutdown exit $code, want 0"
[ ! -e "$SOCK" ] || fail "mixed: drain left the socket file behind"
"$SCSERVED" --dump-wal="$WAL" > "$WORK/mixed.wal_lines"
grep -qxF "var Z" "$WORK/mixed.wal_lines" &&
  grep -qxF "P <= Z" "$WORK/mixed.wal_lines" ||
  fail "mixed: acknowledged adds missing from the WAL after drain"
echo "net_smoke: mixed clients OK"

#--- SIGTERM drain --------------------------------------------------------

"$SCSERVED" --snapshot="$SNAP" --unix="$SOCK" \
  > "$WORK/term.srv.out" 2> /dev/null &
SRV=$!
printf 'pts P\n' | NC --unix "$SOCK" > "$WORK/term.c.out"
grep -q '^ok { nx, ny }$' "$WORK/term.c.out" || fail "term: query failed"
kill -TERM "$SRV"
wait "$SRV" && code=0 || code=$?
SRV=""
[ "$code" -eq 0 ] || fail "term: SIGTERM exit $code, want 0"
[ ! -e "$SOCK" ] || fail "term: SIGTERM drain left the socket file behind"
echo "net_smoke: SIGTERM drain OK"

#--- kill -9 mid-batch, then warm recovery --------------------------------

CSNAP="$WORK/crash.snap" CWAL="$WORK/crash.wal"
cp "$BASE" "$CSNAP"
POCE_FAILPOINTS="wal.append.mid=crash@2" \
  "$SCSERVED" --snapshot="$CSNAP" --wal="$CWAL" --unix="$SOCK" \
  > "$WORK/crash.srv.out" 2> /dev/null &
SRV=$!
# The second add dies mid-record; the client loses its connection.
NC --unix "$SOCK" > "$WORK/crash.w.out" 2> /dev/null << EOF || true
add var Z
add P <= Z
EOF
wait "$SRV" && code=0 || code=$?
SRV=""
[ "$code" -eq 137 ] || fail "crash: expected exit 137, got $code"

# ack => durable: every add acknowledged over the socket is an intact
# WAL record (the torn second record was never acknowledged).
acked=$(grep -c '^ok added$' "$WORK/crash.w.out" || true)
"$SCSERVED" --dump-wal="$CWAL" \
  > "$WORK/crash.wal_lines" 2> "$WORK/crash.wal_err"
grep -q "torn" "$WORK/crash.wal_err" ||
  fail "crash: --dump-wal did not report the torn tail"
[ "$acked" -le "$(wc -l < "$WORK/crash.wal_lines")" ] ||
  fail "crash: more acks than durable WAL records"
[ "$acked" -lt 1 ] || grep -qxF "var Z" "$WORK/crash.wal_lines" ||
  fail "crash: acknowledged line 'var Z' lost from the WAL"

# Warm recovery must be byte-identical to an oracle fed the dumped lines.
"$SCSERVED" --snapshot="$CSNAP" --wal="$CWAL" > "$WORK/crash.rec.out" << EOF
save $WORK/crash.recovered.snap
quit
EOF
grep -q "ok saved" "$WORK/crash.rec.out" || fail "crash: recovery failed"
{
  while IFS= read -r line; do echo "add $line"; done < "$WORK/crash.wal_lines"
  echo "save $WORK/crash.oracle.snap"
  echo "quit"
} | "$SCSERVED" --snapshot="$CSNAP" > "$WORK/crash.oracle.out"
grep -q "ok saved" "$WORK/crash.oracle.out" || fail "crash: oracle failed"
cmp -s "$WORK/crash.recovered.snap" "$WORK/crash.oracle.snap" ||
  fail "crash: recovered state differs from the snapshot+WAL oracle"
echo "net_smoke: crash recovery OK (acked=$acked, byte-identical)"

echo "net_smoke: OK"
