//===- support/Trace.h - Chrome trace-event spans ---------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock trace spans emitted as Chrome trace-event JSON (load the
/// output in chrome://tracing or https://ui.perfetto.dev). Arming is by
/// environment variable — `POCE_TRACE=/tmp/solve.json` makes every poce
/// binary collect spans and write the file at exit — or programmatically
/// via trace::arm()/trace::disarm() (tests, servers that rotate files).
///
/// The disarmed path is a single relaxed atomic-bool load: a Span in a
/// hot loop costs one load+branch when tracing is off, no clock read, no
/// allocation. Instrumentation sites therefore do not need their own
/// gating. Events are buffered in memory (bounded; see MaxEvents) and
/// written once, so tracing never adds I/O to the traced region.
///
/// Span names are expected to be string literals: the buffer stores the
/// pointer, not a copy.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_TRACE_H
#define POCE_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace poce {
namespace trace {

namespace detail {
extern std::atomic<bool> Armed;
} // namespace detail

/// True when spans are being collected. One relaxed load.
inline bool enabled() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// Starts collecting spans and registers the output file. Replaces any
/// previous destination (pending events are flushed there first).
void arm(const std::string &Path);

/// Reads POCE_TRACE and arms if set. Called from a static initializer in
/// Trace.cpp, so every binary honors the variable without per-main wiring;
/// idempotent and callable again after a disarm().
void armFromEnv();

/// Stops collecting and writes the JSON file. No-op when disarmed.
void disarm();

/// Events buffered so far (test hook; also exported as a metric).
uint64_t eventCount();

/// Microseconds on the trace clock (steady, zero at process start).
uint64_t nowMicros();

/// Records a completed span [StartUs, nowMicros()] named \p Name (a
/// string literal). Call only when enabled() was true at span start.
void complete(const char *Name, uint64_t StartUs);

/// Records an instant event (a vertical line in the viewer).
void instant(const char *Name);

/// RAII span: captures the clock at construction when tracing is armed,
/// emits a complete event at destruction.
class Span {
public:
  explicit Span(const char *Name) : Name(Name) {
    if (enabled()) {
      StartUs = nowMicros();
      Active = true;
    }
  }
  ~Span() {
    if (Active)
      complete(Name, StartUs);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  uint64_t StartUs = 0;
  bool Active = false;
};

} // namespace trace
} // namespace poce

#endif // POCE_SUPPORT_TRACE_H
