//===- andersen/Steensgaard.cpp - Unification-based points-to --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "andersen/Steensgaard.h"

#include "support/ErrorHandling.h"
#include "support/Timer.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace poce;
using namespace poce::andersen;
using namespace poce::minic;

namespace {

/// Sentinel for "no cell" (literals and other valueless expressions).
constexpr uint32_t NoCell = ~0U;

/// The unification engine plus the AST walker. Mirrors the structure of
/// the Andersen ConstraintGenerator so the two analyses see identical
/// abstract locations.
class Steensgaard {
public:
  SteensgaardResult run(const TranslationUnit &Unit) {
    Timer T;
    for (const Decl *D : Unit.Decls) {
      switch (D->kind()) {
      case Node::Kind::Var:
        walkVarDecl(cast<VarDecl>(D), /*IsLocal=*/false);
        break;
      case Node::Kind::Function: {
        const auto *Fn = cast<FunctionDecl>(D);
        declareFunction(Fn);
        if (Fn->Body)
          walkFunctionBody(Fn);
        break;
      }
      case Node::Kind::Record:
      case Node::Kind::Typedef:
      case Node::Kind::Enum:
        break;
      default:
        poce_unreachable("non-declaration node at top level");
      }
    }
    SteensgaardResult Result = extract();
    Result.AnalysisSeconds = T.seconds();
    return Result;
  }

private:
  //===--------------------------------------------------------------------===
  // Cells and unification
  //===--------------------------------------------------------------------===

  struct Signature {
    std::vector<uint32_t> Params; ///< Parameter location cells.
    uint32_t Return;              ///< Return-slot location cell.
  };

  uint32_t makeCell() { return Cells.makeSet(); }
  uint32_t find(uint32_t Cell) { return Cells.find(Cell); }

  /// The pointee class of \p Cell, created on demand.
  uint32_t ptsOf(uint32_t Cell) {
    uint32_t Root = find(Cell);
    auto It = Pts.find(Root);
    if (It == Pts.end())
      It = Pts.emplace(Root, makeCell()).first;
    return find(It->second);
  }

  /// Makes \p Cell point to \p Target's class (unifying with any existing
  /// pointee).
  void setPts(uint32_t Cell, uint32_t Target) {
    uint32_t Root = find(Cell);
    auto It = Pts.find(Root);
    if (It == Pts.end())
      Pts.emplace(Root, Target);
    else
      unify(It->second, Target);
  }

  /// The assignment rule: contents of \p Rhs flow into \p Lhs, which in
  /// unification terms equates the two pointee classes.
  void joinPts(uint32_t Lhs, uint32_t Rhs) {
    if (Lhs == NoCell || Rhs == NoCell)
      return;
    unify(ptsOf(Lhs), ptsOf(Rhs));
  }

  /// Unifies two classes, recursively merging pointees and signatures
  /// (iterative worklist: recursive types such as self-containing arrays
  /// are common).
  void unify(uint32_t A, uint32_t B) {
    std::vector<std::pair<uint32_t, uint32_t>> Pending = {{A, B}};
    while (!Pending.empty()) {
      auto [X, Y] = Pending.back();
      Pending.pop_back();
      uint32_t RootX = find(X), RootY = find(Y);
      if (RootX == RootY)
        continue;
      ++Joins;

      // RootX survives.
      uint32_t PtsY = takeEntry(Pts, RootY);
      Cells.unite(RootY, RootX);
      if (PtsY != NoCell) {
        auto It = Pts.find(RootX);
        if (It == Pts.end())
          Pts.emplace(RootX, PtsY);
        else
          Pending.push_back({It->second, PtsY});
      }

      auto SigY = Sigs.find(RootY);
      if (SigY != Sigs.end()) {
        Signature Moved = std::move(SigY->second);
        Sigs.erase(SigY);
        auto SigX = Sigs.find(RootX);
        if (SigX == Sigs.end()) {
          Sigs.emplace(RootX, std::move(Moved));
        } else {
          // Structural unification of function types: corresponding
          // parameter and return locations merge.
          size_t Shared =
              std::min(SigX->second.Params.size(), Moved.Params.size());
          for (size_t I = 0; I != Shared; ++I)
            Pending.push_back({SigX->second.Params[I], Moved.Params[I]});
          Pending.push_back({SigX->second.Return, Moved.Return});
        }
      }
    }
  }

  uint32_t takeEntry(std::unordered_map<uint32_t, uint32_t> &Map,
                     uint32_t Key) {
    auto It = Map.find(Key);
    if (It == Map.end())
      return NoCell;
    uint32_t Value = It->second;
    Map.erase(It);
    return Value;
  }

  //===--------------------------------------------------------------------===
  // Locations and scopes (mirrors the Andersen generator)
  //===--------------------------------------------------------------------===

  uint32_t createLocation(const std::string &Name, bool SelfContained) {
    std::string Unique = Name;
    while (LocationOf.count(Unique))
      Unique = Name + "#" + std::to_string(++NextUniquifier);
    uint32_t Cell = makeCell();
    NameOf[Cell] = Unique;
    LocationOf[Unique] = Cell;
    if (SelfContained)
      setPts(Cell, Cell); // Arrays/functions decay to themselves.
    return Cell;
  }

  uint32_t lookupOrCreateIdent(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    auto Found = Globals.find(Name);
    if (Found != Globals.end())
      return Found->second;
    uint32_t Cell = createLocation(Name, /*SelfContained=*/false);
    Globals[Name] = Cell;
    return Cell;
  }

  //===--------------------------------------------------------------------===
  // Functions
  //===--------------------------------------------------------------------===

  struct FunctionInfo {
    uint32_t Loc = NoCell;
    std::vector<uint32_t> Params;
    uint32_t Return = NoCell;
    bool HasBody = false;
  };

  FunctionInfo &declareFunction(const FunctionDecl *Fn) {
    auto It = Functions.find(Fn->Name);
    if (It != Functions.end())
      return It->second;
    FunctionInfo Info;
    auto Global = Globals.find(Fn->Name);
    if (Global != Globals.end()) {
      Info.Loc = Global->second;
      setPts(Info.Loc, Info.Loc);
    } else {
      Info.Loc = createLocation(Fn->Name, /*SelfContained=*/true);
      Globals[Fn->Name] = Info.Loc;
    }
    for (size_t I = 0; I != Fn->Params.size(); ++I) {
      const VarDecl *Param = Fn->Params[I];
      std::string ParamName =
          Fn->Name + "." +
          (Param->Name.empty() ? "p" + std::to_string(I) : Param->Name);
      bool IsArray = Param->TypeText.find("[]") != std::string::npos;
      Info.Params.push_back(createLocation(ParamName, IsArray));
    }
    Info.Return = makeCell();
    Signature Sig;
    Sig.Params = Info.Params;
    Sig.Return = Info.Return;
    Sigs.emplace(find(Info.Loc), std::move(Sig));
    return Functions.emplace(Fn->Name, std::move(Info)).first->second;
  }

  void walkFunctionBody(const FunctionDecl *Fn) {
    FunctionInfo &Info = declareFunction(Fn);
    Info.HasBody = true;
    uint32_t PreviousReturn = CurrentReturn;
    std::string PreviousName = CurrentFunctionName;
    CurrentReturn = Info.Return;
    CurrentFunctionName = Fn->Name;
    Scopes.emplace_back();
    for (size_t I = 0; I != Fn->Params.size() && I != Info.Params.size();
         ++I)
      if (!Fn->Params[I]->Name.empty())
        Scopes.back()[Fn->Params[I]->Name] = Info.Params[I];
    walkStmt(Fn->Body);
    Scopes.pop_back();
    CurrentReturn = PreviousReturn;
    CurrentFunctionName = std::move(PreviousName);
  }

  bool isAllocatorName(const std::string &Name) const {
    return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
           Name == "valloc" || Name == "xmalloc" || Name == "strdup";
  }

  //===--------------------------------------------------------------------===
  // Declarations and statements
  //===--------------------------------------------------------------------===

  void walkVarDecl(const VarDecl *Var, bool IsLocal) {
    if (Var->Name.empty())
      return;
    bool IsArray = Var->TypeText.find("[]") != std::string::npos;
    uint32_t Cell;
    if (IsLocal) {
      Cell = createLocation(CurrentFunctionName + "." + Var->Name, IsArray);
      Scopes.back()[Var->Name] = Cell;
    } else {
      auto It = Globals.find(Var->Name);
      if (It != Globals.end()) {
        Cell = It->second;
      } else {
        Cell = createLocation(Var->Name, IsArray);
        Globals[Var->Name] = Cell;
      }
    }
    if (Var->Init)
      walkInitInto(Cell, Var->Init);
  }

  void walkInitInto(uint32_t Target, const Expr *Init) {
    if (const auto *List = dyn_cast<InitListExpr>(Init)) {
      for (const Expr *Element : List->Inits)
        walkInitInto(Target, Element);
      return;
    }
    uint32_t Value = walkExpr(Init);
    if (Value != NoCell)
      joinPts(Target, Value);
  }

  void walkStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case Node::Kind::Compound:
      Scopes.emplace_back();
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        walkStmt(Sub);
      Scopes.pop_back();
      return;
    case Node::Kind::DeclStmt:
      for (const VarDecl *Var : cast<DeclStmt>(S)->Decls)
        walkVarDecl(Var, /*IsLocal=*/!Scopes.empty());
      return;
    case Node::Kind::ExprStmt:
      walkExpr(cast<ExprStmt>(S)->E);
      return;
    case Node::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      walkExpr(If->Cond);
      walkStmt(If->Then);
      walkStmt(If->Else);
      return;
    }
    case Node::Kind::While:
      walkExpr(cast<WhileStmt>(S)->Cond);
      walkStmt(cast<WhileStmt>(S)->Body);
      return;
    case Node::Kind::Do:
      walkStmt(cast<DoStmt>(S)->Body);
      walkExpr(cast<DoStmt>(S)->Cond);
      return;
    case Node::Kind::For: {
      const auto *For = cast<ForStmt>(S);
      Scopes.emplace_back();
      walkStmt(For->Init);
      if (For->Cond)
        walkExpr(For->Cond);
      if (For->Inc)
        walkExpr(For->Inc);
      walkStmt(For->Body);
      Scopes.pop_back();
      return;
    }
    case Node::Kind::Return: {
      const auto *Return = cast<ReturnStmt>(S);
      if (Return->Value) {
        uint32_t Value = walkExpr(Return->Value);
        if (Value != NoCell && CurrentReturn != NoCell)
          joinPts(CurrentReturn, Value);
      }
      return;
    }
    case Node::Kind::Switch:
      walkExpr(cast<SwitchStmt>(S)->Cond);
      walkStmt(cast<SwitchStmt>(S)->Body);
      return;
    case Node::Kind::Case: {
      const auto *Case = cast<CaseStmt>(S);
      if (Case->Value)
        walkExpr(Case->Value);
      walkStmt(Case->Sub);
      return;
    }
    case Node::Kind::Break:
    case Node::Kind::Continue:
    case Node::Kind::Null:
      return;
    default:
      poce_unreachable("non-statement node in statement position");
    }
  }

  //===--------------------------------------------------------------------===
  // Expressions (return the expression's location cell, NoCell if none)
  //===--------------------------------------------------------------------===

  uint32_t walkExpr(const Expr *E) {
    switch (E->kind()) {
    case Node::Kind::IntLiteral:
    case Node::Kind::FloatLiteral:
    case Node::Kind::CharLiteral:
      return NoCell;
    case Node::Kind::StringLiteral:
      return createLocation(
          "str@" + std::to_string(cast<StringLiteralExpr>(E)->LiteralId),
          /*SelfContained=*/true);
    case Node::Kind::Ident:
      return lookupOrCreateIdent(cast<IdentExpr>(E)->Name);
    case Node::Kind::Unary: {
      const auto *Unary = cast<UnaryExpr>(E);
      switch (Unary->Op) {
      case UnaryOp::AddressOf: {
        uint32_t Sub = walkExpr(Unary->Sub);
        if (Sub == NoCell)
          return NoCell;
        uint32_t Wrapper = makeCell();
        setPts(Wrapper, Sub);
        return Wrapper;
      }
      case UnaryOp::Deref: {
        uint32_t Sub = walkExpr(Unary->Sub);
        return Sub == NoCell ? NoCell : ptsOf(Sub);
      }
      default:
        return walkExpr(Unary->Sub);
      }
    }
    case Node::Kind::Binary: {
      const auto *Binary = cast<BinaryExpr>(E);
      return mergeValues(walkExpr(Binary->Lhs), walkExpr(Binary->Rhs));
    }
    case Node::Kind::Assign: {
      const auto *Assign = cast<AssignExpr>(E);
      uint32_t Lhs = walkExpr(Assign->Lhs);
      uint32_t Rhs = walkExpr(Assign->Rhs);
      if (Lhs != NoCell && Rhs != NoCell)
        joinPts(Lhs, Rhs);
      return Lhs;
    }
    case Node::Kind::Conditional: {
      const auto *Cond = cast<ConditionalExpr>(E);
      walkExpr(Cond->Cond);
      return mergeValues(walkExpr(Cond->TrueExpr),
                         walkExpr(Cond->FalseExpr));
    }
    case Node::Kind::Call:
      return walkCall(cast<CallExpr>(E));
    case Node::Kind::Index: {
      const auto *Index = cast<IndexExpr>(E);
      uint32_t Sum =
          mergeValues(walkExpr(Index->Base), walkExpr(Index->Index));
      return Sum == NoCell ? NoCell : ptsOf(Sum);
    }
    case Node::Kind::Member: {
      const auto *Member = cast<MemberExpr>(E);
      uint32_t Base = walkExpr(Member->Base);
      if (!Member->IsArrow)
        return Base;
      return Base == NoCell ? NoCell : ptsOf(Base);
    }
    case Node::Kind::Cast:
      return walkExpr(cast<CastExpr>(E)->Sub);
    case Node::Kind::Sizeof:
      if (cast<SizeofExpr>(E)->Sub)
        walkExpr(cast<SizeofExpr>(E)->Sub);
      return NoCell;
    case Node::Kind::Comma: {
      const auto *Comma = cast<CommaExpr>(E);
      walkExpr(Comma->Lhs);
      return walkExpr(Comma->Rhs);
    }
    case Node::Kind::InitList:
      for (const Expr *Init : cast<InitListExpr>(E)->Inits)
        walkExpr(Init);
      return NoCell;
    default:
      poce_unreachable("non-expression node in expression position");
    }
  }

  /// A value that may designate either operand's targets: a fresh cell
  /// whose pointee merges both pointees (Steensgaard's symmetric
  /// conflation of arithmetic and conditionals).
  uint32_t mergeValues(uint32_t A, uint32_t B) {
    if (A == NoCell)
      return B;
    if (B == NoCell)
      return A;
    uint32_t Merged = makeCell();
    joinPts(Merged, A);
    joinPts(Merged, B);
    return Merged;
  }

  uint32_t walkCall(const CallExpr *Call) {
    if (const auto *Ident = dyn_cast<IdentExpr>(Call->Callee)) {
      auto Fn = Functions.find(Ident->Name);
      bool DefinedInProgram = Fn != Functions.end() && Fn->second.HasBody;
      if (isAllocatorName(Ident->Name) && !DefinedInProgram) {
        for (const Expr *Arg : Call->Args)
          walkExpr(Arg);
        uint32_t Heap = createLocation(
            "heap@" + std::to_string(NextHeapId++), /*SelfContained=*/false);
        uint32_t Wrapper = makeCell();
        setPts(Wrapper, Heap);
        return Wrapper;
      }
    }

    uint32_t Callee = walkExpr(Call->Callee);
    std::vector<uint32_t> Args;
    for (const Expr *Arg : Call->Args)
      Args.push_back(walkExpr(Arg));
    if (Callee == NoCell)
      return NoCell;

    // The callee's values live in its pointee class (functions contain
    // themselves, so this resolves f, fp, and (*fp) uniformly).
    uint32_t Target = ptsOf(Callee);
    auto SigIt = Sigs.find(find(Target));
    if (SigIt == Sigs.end()) {
      // Unknown target (external or not-yet-joined): attach a lazy
      // signature so later unifications connect the call site.
      Signature Lazy;
      for (size_t I = 0; I != Args.size(); ++I)
        Lazy.Params.push_back(makeCell());
      Lazy.Return = makeCell();
      SigIt = Sigs.emplace(find(Target), std::move(Lazy)).first;
    }
    // Copy out: unify() may rehash Sigs while joining parameters.
    Signature Sig = SigIt->second;
    size_t Shared = std::min(Sig.Params.size(), Args.size());
    for (size_t I = 0; I != Shared; ++I)
      if (Args[I] != NoCell)
        joinPts(Sig.Params[I], Args[I]);
    return Sig.Return;
  }

  //===--------------------------------------------------------------------===
  // Extraction
  //===--------------------------------------------------------------------===

  SteensgaardResult extract() {
    SteensgaardResult Result;
    Result.NumLocations = static_cast<uint32_t>(NameOf.size());
    Result.NumCells = Cells.size();
    Result.Joins = Joins;

    // Class representative -> named members.
    std::unordered_map<uint32_t, std::vector<std::string>> Members;
    for (const auto &[Cell, Name] : NameOf)
      Members[find(Cell)].push_back(Name);

    for (const auto &[Cell, Name] : NameOf) {
      std::vector<std::string> Targets;
      auto PtsIt = Pts.find(find(Cell));
      if (PtsIt != Pts.end()) {
        auto MembersIt = Members.find(find(PtsIt->second));
        if (MembersIt != Members.end())
          Targets = MembersIt->second;
      }
      std::sort(Targets.begin(), Targets.end());
      Result.PointsTo.emplace(Name, std::move(Targets));
    }
    return Result;
  }

  UnionFind Cells;
  std::unordered_map<uint32_t, uint32_t> Pts;  ///< Root -> pointee cell.
  std::unordered_map<uint32_t, Signature> Sigs; ///< Root -> signature.
  uint64_t Joins = 0;

  std::unordered_map<uint32_t, std::string> NameOf;
  std::map<std::string, uint32_t> LocationOf;
  std::map<std::string, uint32_t> Globals;
  std::vector<std::map<std::string, uint32_t>> Scopes;
  std::map<std::string, FunctionInfo> Functions;
  uint32_t CurrentReturn = NoCell;
  std::string CurrentFunctionName;
  uint32_t NextHeapId = 0;
  uint32_t NextUniquifier = 0;
};

} // namespace

SteensgaardResult
poce::andersen::runSteensgaard(const TranslationUnit &Unit) {
  return Steensgaard().run(Unit);
}
