//===- driver/scserved.cpp - Long-running constraint query server ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// scserved: solver-as-a-service. Loads a warm solved graph (from a
/// GraphSnapshot, or by solving a .scs file once at startup) and then
/// answers a newline-delimited request/response protocol — one request
/// line in, one `ok ...` or `err <code> <detail>` line out — either over
/// stdin/stdout (fully scriptable, the default) or over sockets:
///
///   scserved --snapshot=graph.snap --wal=graph.wal
///   scserved --config=if-online system.scs
///   scserved --snapshot=graph.snap --unix=/tmp/poce.sock --net-lanes=4
///   scserved --snapshot=graph.snap --listen=127.0.0.1:7075
///
/// The writer pipeline (WAL recovery, append-before-apply, budget
/// rollback, atomic checkpoints, degraded mode) lives in
/// serve/ServerCore and is shared verbatim between the stdin loop and
/// the socket front end (net/Server.h). In socket mode, reads execute
/// concurrently on a thread-pool wave against an immutable published
/// ReadView while a single writer lane owns the core — queries never
/// block on adds; see net/Server.h for the full concurrency story.
///
/// Fault tolerance (see INTERNALS.md for the recovery invariant):
///   - With --wal, every accepted `add` line is validated (dry-run parse)
///     and then appended (and fsynced) to the write-ahead log *before* it
///     is applied, so `ok added` implies the line is durable and will
///     replay cleanly. On restart the server replays the WAL on top of
///     the snapshot, which reconstructs exactly the acknowledged state; a
///     torn tail from a crash mid-append is detected by checksum and
///     truncated, and a WAL whose base id does not match the snapshot
///     (a checkpoint interrupted between the snapshot rename and the WAL
///     reset) is recognized as stale and skipped — its records are
///     already contained in the snapshot.
///   - --deadline-ms / --edge-budget / --max-mem-mb bound each `add`'s
///     closure. A breach aborts the batch, rolls the graph back to the
///     pre-line state, and answers `err budget_exceeded ...`; the server
///     keeps serving.
///   - `checkpoint` (or --checkpoint-every=N) atomically rewrites the
///     snapshot and resets the WAL, bounding recovery time.
///   - `shutdown` (or SIGTERM) drains in-flight requests, closes the
///     fsynced WAL, dumps metrics, and exits 0 — restart recovers every
///     acknowledged add.
///   - POCE_FAILPOINTS arms fault injection (see support/FailPoint.h).
///
/// Protocol (see README.md for a copy-pasteable session):
///   ls X          least solution of X
///   pts X         points-to location tags of X
///   alias X Y     may X and Y alias?
///   add LINE      feed one constraint-file line through the online closure
///   retract LINE  delete a previously added constraint; the solver
///                 recomputes the affected cone incrementally (WAL v3
///                 `!retract` record, shipped to followers like an add)
///   save PATH     snapshot the current graph (atomic write)
///   checkpoint [PATH]  snapshot + reset the WAL (default: --snapshot path)
///   stats         solver statistics + fault-tolerance counters
///   counters      query latency percentiles and cache counters
///   metrics       Prometheus text exposition (multi-line, ends "# EOF")
///   verify        canonical answer checksum (replica consistency check)
///   shutdown      graceful drain and exit 0
///   help | quit
///
/// Replication (socket mode; see INTERNALS.md "Replication and
/// failover"): a follower started with --follow=HOST:PORT (or a socket
/// path) bootstraps from the primary's snapshot when its own --snapshot
/// file does not exist yet, replays its local WAL, then tails the
/// primary's record stream with reconnect backoff and a resumable
/// cursor. It serves reads from its own read views, answers writes with
/// `err read_only`, and a `promote` verb re-stamps the WAL base and
/// flips it writable (failover).
///
/// Observability: query latencies land in an O(1)-insert log-bucket
/// histogram (support/Metrics.h) instead of a sorted ring, the `metrics`
/// verb exposes every registered series in Prometheus text format, and
/// --metrics-out=FILE dumps the registry as JSON every --metrics-every=N
/// handled requests (and at exit). POCE_TRACE=FILE additionally records
/// Chrome trace-event spans of the solver/WAL/checkpoint phases.
///
//===----------------------------------------------------------------------===//

#include "net/Framing.h"
#include "net/Replication.h"
#include "net/Server.h"
#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "serve/ServerCore.h"
#include "serve/Telemetry.h"
#include "serve/Wal.h"
#include "support/CommandLine.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/Status.h"
#include "support/Trace.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace poce;
using namespace poce::serve;

namespace {

bool parseConfig(const std::string &Name, SolverOptions &Options) {
  if (Name == "sf-plain")
    Options = makeConfig(GraphForm::Standard, CycleElim::None);
  else if (Name == "if-plain")
    Options = makeConfig(GraphForm::Inductive, CycleElim::None);
  else if (Name == "sf-online")
    Options = makeConfig(GraphForm::Standard, CycleElim::Online);
  else if (Name == "if-online")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  else
    return false;
  return true;
}

/// --dump-wal=FILE: print every intact line of a WAL (one per line) and
/// exit. This is the recovery harness's oracle input: snapshot + these
/// lines must equal the recovered server's state.
int dumpWal(const std::string &Path) {
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  if (!Contents.ok()) {
    std::fprintf(stderr, "scserved: %s\n",
                 Contents.status().toString().c_str());
    return 1;
  }
  for (const std::string &Line : Contents->Lines)
    std::printf("%s\n", Line.c_str());
  if (!Contents->HeaderIntact)
    std::fprintf(stderr, "scserved: note: torn WAL header (crash during "
                         "creation); the log is empty\n");
  else if (Contents->TornBytes)
    std::fprintf(stderr, "scserved: note: %llu torn trailing bytes ignored\n",
                 static_cast<unsigned long long>(Contents->TornBytes));
  return 0;
}

/// SIGTERM = graceful drain in either mode. The handler only flips the
/// flag and pokes the socket server's eventfd (both async-signal-safe);
/// the serving loops notice and drain.
volatile std::sig_atomic_t TermRequested = 0;

void onSigterm(int) {
  TermRequested = 1;
  net::NetServer::requestStop();
}

void installSigterm() {
  struct sigaction Action;
  std::memset(&Action, 0, sizeof(Action));
  Action.sa_handler = onSigterm;
  sigemptyset(&Action.sa_mask);
  // Deliberately no SA_RESTART: the stdin loop's blocking read must
  // return EINTR so an idle server still drains promptly.
  Action.sa_flags = 0;
  ::sigaction(SIGTERM, &Action, nullptr);
}

} // namespace

int main(int Argc, char **Argv) {
  FailPoint::armFromEnv();

  CommandLine Cmd("scserved",
                  "long-running inclusion-constraint query server "
                  "(newline protocol on stdin/stdout or sockets)");
  std::string Snapshot;
  std::string WalPath;
  std::string DumpWal;
  std::string Config = "if-online";
  std::string Closure = "worklist";
  std::string Preprocess = "none";
  int64_t Seed = 0x706f6365;
  int64_t Threads = 1;
  int64_t CacheCapacity = 256;
  int64_t DeadlineMs = 0;
  int64_t EdgeBudget = 0;
  int64_t MaxMemMb = 0;
  int64_t MaxRequest = 64 * 1024;
  int64_t CheckpointEvery = 0;
  std::string MetricsOut;
  int64_t MetricsEvery = 64;
  std::string Listen;
  std::string UnixPath;
  int64_t NetLanes = 0;
  int64_t IdleTimeoutMs = 0;
  std::string Follow;
  int64_t FollowDeadlineMs = 30000;
  Cmd.addString("snapshot", &Snapshot, "load this snapshot instead of "
                                       "solving a .scs file");
  Cmd.addString("wal", &WalPath,
                "write-ahead log: accepted adds are fsynced here before "
                "application, and replayed on top of the snapshot at "
                "startup");
  Cmd.addString("dump-wal", &DumpWal,
                "print the intact lines of this WAL and exit");
  Cmd.addString("config", &Config, "{sf,if}-{plain,online} for .scs input");
  Cmd.addString("closure", &Closure,
                "closure schedule for adds: worklist (eager) or wave "
                "(topo-ordered delta sweeps); responses are identical. "
                "Applies to snapshot and .scs bases alike (the schedule "
                "is not serialized)");
  Cmd.addString("preprocess", &Preprocess,
                "pre-solve pass for .scs input: none or offline (HVN + "
                "Nuutila SCC variable substitution before the first "
                "closure); responses are identical. Snapshot bases load "
                "already closed, so there the option is only recorded");
  Cmd.addInt("seed", &Seed, "variable-order seed for .scs input");
  Cmd.addInt("threads", &Threads,
             "lanes for least-solution materialization on load "
             "(0 = hardware); results identical for any value");
  Cmd.addInt("cache", &CacheCapacity, "materialized-view LRU capacity");
  Cmd.addInt("deadline-ms", &DeadlineMs,
             "per-add closure deadline in ms (0 = unlimited)");
  Cmd.addInt("edge-budget", &EdgeBudget,
             "per-add closure work budget in edges (0 = unlimited)");
  Cmd.addInt("max-mem-mb", &MaxMemMb,
             "abort an add when process RSS exceeds this (0 = unlimited)");
  Cmd.addInt("max-request", &MaxRequest,
             "longest accepted request line in bytes");
  Cmd.addInt("checkpoint-every", &CheckpointEvery,
             "auto-checkpoint after this many accepted adds "
             "(requires --snapshot and --wal; 0 = never)");
  Cmd.addString("metrics-out", &MetricsOut,
                "dump the metrics registry to this file as JSON every "
                "--metrics-every requests and at exit");
  Cmd.addInt("metrics-every", &MetricsEvery,
             "requests between --metrics-out dumps (default 64)");
  Cmd.addString("listen", &Listen,
                "serve the protocol on this TCP address (host:port; "
                "port 0 picks an ephemeral port) instead of stdin");
  Cmd.addString("unix", &UnixPath,
                "serve the protocol on this Unix-domain socket path "
                "instead of stdin (combinable with --listen)");
  Cmd.addInt("net-lanes", &NetLanes,
             "reader lanes for socket mode (0 = one per hardware "
             "thread); answers are identical for any value");
  Cmd.addInt("idle-timeout-ms", &IdleTimeoutMs,
             "close socket connections idle this long (0 = never)");
  Cmd.addString("follow", &Follow,
                "run as a read-only replica of the primary at this "
                "address (host:port, or a Unix-socket path): bootstrap "
                "from its snapshot if --snapshot does not exist yet, "
                "tail its WAL stream, answer writes with `err "
                "read_only` until a `promote` verb. Requires "
                "--snapshot, --wal, and a socket listener");
  Cmd.addInt("follow-deadline-ms", &FollowDeadlineMs,
             "give up on the initial bootstrap connection after this "
             "long (the running tail retries forever)");
  if (!Cmd.parse(Argc, Argv))
    return 1;

  // The server always wants per-phase timings: its request loop is I/O
  // bound, so the clock reads are noise, and the histograms are what the
  // `metrics` verb serves.
  MetricsRegistry::setTimingEnabled(true);

  if (!DumpWal.empty())
    return dumpWal(DumpWal);

  if (Closure != "worklist" && Closure != "wave") {
    std::fprintf(stderr, "scserved: unknown closure schedule '%s'\n",
                 Closure.c_str());
    return 1;
  }

  if (Preprocess != "none" && Preprocess != "offline") {
    std::fprintf(stderr, "scserved: unknown preprocess mode '%s'\n",
                 Preprocess.c_str());
    return 1;
  }

  if (CheckpointEvery > 0 && (Snapshot.empty() || WalPath.empty())) {
    std::fprintf(stderr,
                 "scserved: --checkpoint-every requires --snapshot and "
                 "--wal\n");
    return 1;
  }

  // Follower mode: the primary's snapshot/WAL pair is the replicated
  // unit, so the local pair and a socket listener are mandatory, and the
  // closure/preprocess flags are ignored — the follower adopts the
  // primary's serialized options wholesale so replayed adds take the
  // exact same path and the states stay byte-identical.
  std::string FollowTcp, FollowUnix;
  if (!Follow.empty()) {
    if (Follow.find(':') != std::string::npos)
      FollowTcp = Follow;
    else
      FollowUnix = Follow;
    if (Snapshot.empty() || WalPath.empty()) {
      std::fprintf(stderr,
                   "scserved: --follow requires --snapshot and --wal\n");
      return 1;
    }
    if (Listen.empty() && UnixPath.empty()) {
      std::fprintf(stderr, "scserved: --follow requires --listen or "
                           "--unix (followers serve over sockets)\n");
      return 1;
    }
    if (Closure != "worklist" || Preprocess != "none")
      std::fprintf(stderr,
                   "scserved: note: --closure/--preprocess are ignored "
                   "under --follow (the primary's options are adopted)\n");
    if (::access(Snapshot.c_str(), F_OK) != 0) {
      Status Boot = net::ReplicationClient::coldBootstrap(
          FollowTcp, FollowUnix, Snapshot,
          static_cast<uint64_t>(FollowDeadlineMs));
      if (!Boot) {
        std::fprintf(stderr, "scserved: %s\n", Boot.toString().c_str());
        return 1;
      }
    }
  }

  SolverBundle Bundle;
  // The WAL's base id: the loaded snapshot's payload checksum, or 0 when
  // the base is a fresh .scs solve. A WAL stamped with a different id
  // does not extend this base (see serve/Wal.h).
  uint64_t SnapBase = 0;
  if (!Snapshot.empty()) {
    if (!Cmd.positionals().empty()) {
      std::fprintf(stderr,
                   "scserved: --snapshot and a .scs file are exclusive\n");
      return 1;
    }
    Status Loaded = GraphSnapshot::load(Snapshot, Bundle, &SnapBase);
    if (!Loaded) {
      std::fprintf(stderr, "scserved: %s\n", Loaded.toString().c_str());
      return 1;
    }
  } else {
    if (Cmd.positionals().size() != 1) {
      std::fprintf(stderr, "scserved: expected --snapshot=PATH or exactly "
                           "one .scs file; try --help\n");
      return 1;
    }
    std::ifstream In(Cmd.positionals()[0]);
    if (!In) {
      std::fprintf(stderr, "scserved: cannot open '%s'\n",
                   Cmd.positionals()[0].c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    ConstraintSystemFile System;
    Status Parsed = System.parse(Buffer.str());
    if (!Parsed) {
      std::fprintf(stderr, "scserved: %s: %s\n",
                   Cmd.positionals()[0].c_str(),
                   Parsed.toString().c_str());
      return 1;
    }
    SolverOptions Options;
    if (!parseConfig(Config, Options)) {
      std::fprintf(stderr, "scserved: unknown configuration '%s' (oracle "
                           "and periodic solvers cannot serve)\n",
                   Config.c_str());
      return 1;
    }
    Options.Seed = static_cast<uint64_t>(Seed);
    // Armed pre-construction so the .scs bulk load defers into the pass.
    if (Preprocess == "offline")
      Options.Preprocess = PreprocessMode::Offline;
    Bundle.Constructors = std::make_unique<ConstructorTable>();
    Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
    Bundle.Solver = std::make_unique<ConstraintSolver>(*Bundle.Terms, Options);
    System.emit(*Bundle.Solver);
  }

  Bundle.Solver->setThreads(static_cast<unsigned>(Threads));
  // Snapshots never carry the closure schedule (the loaded graph is
  // already closed); re-arm it here so subsequent adds use it. Followers
  // skip both re-arms: their state must stay byte-identical to the
  // primary's, so the options ride in with every shipped snapshot.
  if (Closure == "wave" && Follow.empty())
    Bundle.Solver->setClosure(ClosureMode::Wave);
  // Snapshots never carry the preprocess option either; re-arm it so the
  // recorded configuration matches the flags (on a warm base the pass
  // itself never re-runs — incremental adds stay online).
  if (Preprocess == "offline" && Follow.empty())
    Bundle.Solver->setPreprocess(PreprocessMode::Offline);
  Bundle.Solver->materializeAllViews();

  ServerCoreConfig CoreConfig;
  CoreConfig.SnapshotPath = Snapshot;
  CoreConfig.WalPath = WalPath;
  CoreConfig.CheckpointEvery = static_cast<uint64_t>(CheckpointEvery);
  CoreConfig.DeadlineMs = static_cast<uint64_t>(DeadlineMs);
  CoreConfig.EdgeBudget = static_cast<uint64_t>(EdgeBudget);
  CoreConfig.MaxMemBytes = static_cast<uint64_t>(MaxMemMb) * 1024 * 1024;
  ServerCore Core(std::move(Bundle), static_cast<size_t>(CacheCapacity),
                  CoreConfig);
  if (!Core.valid()) {
    std::fprintf(stderr, "scserved: %s\n", Core.initError().c_str());
    return 1;
  }
  // NOTE: never cache a ConstraintSolver reference across requests — a
  // budget rollback replaces the engine's bundle, freeing the old solver.

  Status Recovered = Core.recover(SnapBase);
  if (!Recovered) {
    std::fprintf(stderr, "scserved: %s\n", Recovered.toString().c_str());
    return 1;
  }

  QueryEngine &Engine = Core.engine();
  std::printf("ok ready config=%s vars=%u live=%u wal_replayed=%llu "
              "wal_skipped=%llu\n",
              Engine.solver().options().configName().c_str(),
              Engine.solver().numVars(), Engine.solver().numLiveVars(),
              static_cast<unsigned long long>(Core.walReplayed()),
              static_cast<unsigned long long>(Core.walSkipped()));
  std::fflush(stdout);

  installSigterm();

  // Socket mode: hand the core to the epoll front end. The second ready
  // line carries the bound addresses (the TCP port may have been
  // ephemeral), so harnesses know where to connect.
  if (!Listen.empty() || !UnixPath.empty()) {
    net::NetServerOptions NetOpts;
    NetOpts.TcpSpec = Listen;
    NetOpts.UnixPath = UnixPath;
    NetOpts.Lanes = static_cast<unsigned>(NetLanes);
    NetOpts.MaxRequest = static_cast<size_t>(MaxRequest);
    NetOpts.IdleTimeoutMs = static_cast<uint64_t>(IdleTimeoutMs);
    NetOpts.MetricsOut = MetricsOut;
    NetOpts.MetricsEvery = static_cast<uint64_t>(MetricsEvery);
    NetOpts.ReadOnly = !Follow.empty();
    // A promote must stop the tail without joining it (the tail thread
    // may be blocked inside a queued writer-lane job); requestStop only
    // flips a flag and shuts the socket down, which is enough.
    net::ReplicationClient *ReplPtr = nullptr;
    if (!Follow.empty())
      NetOpts.OnPromote = [&ReplPtr] {
        if (ReplPtr)
          ReplPtr->requestStop();
      };
    net::NetServer Server(Core, NetOpts);
    std::unique_ptr<net::ReplicationClient> Repl;
    if (!Follow.empty()) {
      net::ReplicationClient::Options ReplOpts;
      ReplOpts.TcpSpec = FollowTcp;
      ReplOpts.UnixPath = FollowUnix;
      ReplOpts.InitialBase = Core.walBaseId();
      ReplOpts.InitialSeq = Core.walRecords();
      Repl = std::make_unique<net::ReplicationClient>(Server, ReplOpts);
      ReplPtr = Repl.get();
    }
    Status Ready = Server.init();
    if (!Ready) {
      std::fprintf(stderr, "scserved: %s\n", Ready.toString().c_str());
      return 1;
    }
    std::string Where;
    if (!Listen.empty())
      Where += " tcp=" + std::to_string(Server.tcpPort());
    if (!UnixPath.empty())
      Where += " unix=" + UnixPath;
    std::printf("ok listening%s%s\n", Where.c_str(),
                Follow.empty() ? "" : " role=follower");
    std::fflush(stdout);
    if (Repl)
      Repl->start();
    int Exit = Server.run();
    if (Repl)
      Repl->stop();
    return Exit;
  }

  // Stdin mode. Framing goes through net::LineBuffer so the size limit
  // is enforced streamingly (the reply text matches the old whole-line
  // check), and the read loop is plain read(2) so a SIGTERM's EINTR
  // breaks an idle wait.
  uint64_t RequestsHandled = 0;
  auto DumpMetrics = [&]() {
    if (MetricsOut.empty())
      return;
    Status Written = Core.dumpMetricsTo(MetricsOut);
    if (!Written)
      std::fprintf(stderr, "scserved: metrics dump failed: %s\n",
                   Written.toString().c_str());
  };
  auto Reply = [](const std::string &Line) {
    std::fputs(Line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  auto ReplyErr = [&Reply](const Status &St) { Reply("err " + St.wire()); };
  auto ResolveVar = [&](const std::string &Name, VarId &Out) {
    uint32_t Var = Engine.varOf(Name);
    if (Var == QueryEngine::NotFound)
      return false;
    Out = Var;
    return true;
  };

  // Returns false when the loop should stop (quit or shutdown).
  auto HandleLine = [&](const std::string &Line) -> bool {
    Request Req = parseRequest(Line);
    if (Req.Verb.empty() || Req.Verb[0] == '#')
      return true;

    ++RequestsHandled;
    if (MetricsEvery > 0 &&
        RequestsHandled % static_cast<uint64_t>(MetricsEvery) == 0)
      DumpMetrics();

    if (Req.Verb == "quit" || Req.Verb == "exit") {
      Reply("ok bye");
      return false;
    }
    if (Req.Verb == "help") {
      Reply("ok commands: ls X | pts X | alias X Y | add LINE | "
            "retract LINE | save PATH | checkpoint [PATH] | stats | "
            "counters | metrics | verify | shutdown | help | quit");
      return true;
    }
    if (Req.Verb == "ls" || Req.Verb == "pts" || Req.Verb == "alias") {
      const uint64_t StartUs = trace::nowMicros();
      std::string Response;
      VarId X = 0, Y = 0;
      if (!ResolveVar(Req.Arg1, X)) {
        ReplyErr(Status::error(ErrorCode::NotFound,
                               "unknown variable '" + Req.Arg1 + "'"));
        return true;
      }
      if (Req.Verb == "alias") {
        if (!ResolveVar(Req.Arg2, Y)) {
          ReplyErr(Status::error(ErrorCode::NotFound,
                                 "unknown variable '" + Req.Arg2 + "'"));
          return true;
        }
        Response = Engine.alias(X, Y) ? "ok true" : "ok false";
      } else if (Req.Verb == "ls") {
        Response = "ok " + render::renderSet(Engine.ls(X));
      } else {
        Response = "ok " + render::renderSet(Engine.pts(X));
      }
      telemetry::queryLatencyHistogram().record(trace::nowMicros() -
                                                StartUs);
      trace::complete("serve.query", StartUs);
      Reply(Response);
      return true;
    }

    std::string WriterReply;
    if (Core.handleWriterVerb(Req, WriterReply)) {
      Reply(WriterReply);
      return !Core.shutdownRequested();
    }

    ReplyErr(Status::error(ErrorCode::InvalidArgument,
                           "unknown verb '" + Req.Verb + "'; try help"));
    return true;
  };

  net::LineBuffer In(static_cast<size_t>(MaxRequest));
  bool Running = true;
  while (Running) {
    char Buf[4096];
    ssize_t N = ::read(STDIN_FILENO, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR && !TermRequested)
        continue;
      break; // SIGTERM (or a hard stdin error): drain and exit 0.
    }
    if (N == 0)
      break; // EOF.
    In.append(Buf, static_cast<size_t>(N));
    std::string Item;
    for (;;) {
      net::LineBuffer::Item Kind = In.next(Item);
      if (Kind == net::LineBuffer::Item::None)
        break;
      if (Kind == net::LineBuffer::Item::Oversized) {
        ReplyErr(Status::error(ErrorCode::TooLarge,
                               "request is " + Item + " bytes; limit is " +
                                   std::to_string(MaxRequest)));
        continue;
      }
      if (!HandleLine(Item)) {
        Running = false;
        break;
      }
    }
    if (TermRequested)
      break;
  }
  // Common drain: every acknowledged add is already fsynced, so closing
  // the WAL cleanly plus the final metrics dump is the whole shutdown.
  DumpMetrics();
  Core.shutdownDrain();
  return 0;
}
