//===- graph/RandomGraph.h - Random graph generation ------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the random graphs of the paper's analytical model
/// (Section 5): G(n, p) digraphs and random initial constraint-system
/// shapes with n variable nodes and m source/sink nodes where every
/// potential edge is present with probability p.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_GRAPH_RANDOMGRAPH_H
#define POCE_GRAPH_RANDOMGRAPH_H

#include "graph/Digraph.h"
#include "support/PRNG.h"

#include <cstdint>

namespace poce {

/// Generates a G(n, p) digraph: each ordered pair of distinct nodes is an
/// edge with probability \p EdgeProb.
Digraph randomDigraph(uint32_t NumNodes, double EdgeProb, PRNG &Rng);

/// Shape of a random inclusion constraint system per the model's
/// assumptions: n variables, m constructed nodes (half sources, half
/// sinks), every legal edge present with probability p.
struct RandomConstraintShape {
  uint32_t NumVars = 0;
  uint32_t NumSources = 0;
  uint32_t NumSinks = 0;

  /// Initial variable-variable constraints X_i <= X_j (i != j).
  std::vector<std::pair<uint32_t, uint32_t>> VarVar;
  /// Initial source-variable constraints c_k <= X_i.
  std::vector<std::pair<uint32_t, uint32_t>> SourceVar;
  /// Initial variable-sink constraints X_i <= s_k.
  std::vector<std::pair<uint32_t, uint32_t>> VarSink;
};

/// Samples a random constraint shape with \p NumVars variables, \p NumCons
/// constructed nodes split evenly into sources and sinks, and edge
/// probability \p EdgeProb (the paper uses p = 1/n for initial graphs and
/// m/n = 2/3).
RandomConstraintShape randomConstraintShape(uint32_t NumVars, uint32_t NumCons,
                                            double EdgeProb, PRNG &Rng);

} // namespace poce

#endif // POCE_GRAPH_RANDOMGRAPH_H
