//===- tests/minic_printer_test.cpp - Pretty-printer unit tests ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "minic/PrettyPrinter.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace poce;
using namespace poce::minic;

namespace {

std::unique_ptr<TranslationUnit> parseOk(const std::string &Source) {
  auto Unit = std::make_unique<TranslationUnit>();
  std::vector<std::string> Errors;
  EXPECT_TRUE(andersen::parseSource(Source, *Unit, &Errors))
      << (Errors.empty() ? "?" : Errors[0]);
  return Unit;
}

const Expr *firstReturnValue(const TranslationUnit &Unit) {
  for (const Decl *D : Unit.Decls)
    if (const auto *Fn = dyn_cast<FunctionDecl>(D))
      if (Fn->Body && !Fn->Body->Body.empty())
        if (const auto *Ret = dyn_cast<ReturnStmt>(Fn->Body->Body[0]))
          return Ret->Value;
  return nullptr;
}

std::string printedExprOf(const std::string &ExprText) {
  auto Unit = parseOk("int f(int a, int b, int c) { return " + ExprText +
                      "; }");
  const Expr *E = firstReturnValue(*Unit);
  EXPECT_NE(E, nullptr);
  return E ? printExpr(E) : std::string();
}

} // namespace

TEST(PrinterTest, ExpressionsFullyParenthesized) {
  EXPECT_EQ(printedExprOf("a + b * c"), "(a + (b * c))");
  EXPECT_EQ(printedExprOf("a = b = c"), "(a = (b = c))");
  EXPECT_EQ(printedExprOf("*&a"), "(*(&a))");
  EXPECT_EQ(printedExprOf("a ? b : c"), "(a ? b : c)");
  EXPECT_EQ(printedExprOf("f(a, b)[c]"), "f(a, b)[c]");
  EXPECT_EQ(printedExprOf("a->x"), "a->x");
  EXPECT_EQ(printedExprOf("a++ - --b"), "((a++) - (--b))");
}

TEST(PrinterTest, StringEscapes) {
  auto Unit = parseOk("char *s = \"a\\nb\\\"c\";");
  const auto *Var = dyn_cast<VarDecl>(Unit->Decls[0]);
  ASSERT_NE(Var, nullptr);
  EXPECT_EQ(printExpr(Var->Init), "\"a\\nb\\\"c\"");
}

TEST(PrinterTest, UnitRendersAllDeclKinds) {
  auto Unit = parseOk("typedef int myint;\n"
                      "struct node { struct node *next; };\n"
                      "enum color { RED, BLUE };\n"
                      "int g = 3;\n"
                      "int *f(int *p);\n"
                      "int *f(int *p) { return p; }\n");
  std::string Source = printUnit(*Unit);
  EXPECT_NE(Source.find("typedef"), std::string::npos);
  EXPECT_NE(Source.find("struct node"), std::string::npos);
  EXPECT_NE(Source.find("enum color { RED, BLUE };"), std::string::npos);
  EXPECT_NE(Source.find("int g = 3;"), std::string::npos);
  EXPECT_NE(Source.find("int *f(int *p);"), std::string::npos);
}

TEST(PrinterTest, DumpShowsStructure) {
  auto Unit = parseOk("int x;\n"
                      "int main(void) { if (x) { x = 1; } return x; }");
  std::string Dump = dumpAST(*Unit);
  EXPECT_NE(Dump.find("Var 'x'"), std::string::npos);
  EXPECT_NE(Dump.find("Function 'main'"), std::string::npos);
  EXPECT_NE(Dump.find("If"), std::string::npos);
  EXPECT_NE(Dump.find("Assign"), std::string::npos);
  EXPECT_NE(Dump.find("Return"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Round trip: printed source re-parses to an analysis-equivalent program
//===----------------------------------------------------------------------===//

namespace {

std::map<std::string, std::vector<std::string>>
analyzePointsTo(const TranslationUnit &Unit) {
  ConstructorTable Constructors;
  return andersen::runAnalysis(
             Unit, Constructors,
             makeConfig(GraphForm::Inductive, CycleElim::Online))
      .PointsTo;
}

} // namespace

class PrinterRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PrinterRoundTripTest, GeneratedProgramsSurviveRoundTrip) {
  workload::ProgramSpec Spec;
  Spec.Name = "roundtrip";
  Spec.TargetAstNodes = 1200;
  Spec.Seed = GetParam();
  std::string Source = workload::generateProgram(Spec);

  auto Unit = parseOk(Source);
  std::string Printed = printUnit(*Unit);
  auto Reparsed = parseOk(Printed);

  // Printing normalizes declarator syntax, so ASTs differ in type text;
  // the analysis results must agree exactly.
  EXPECT_EQ(analyzePointsTo(*Unit), analyzePointsTo(*Reparsed))
      << "printed program:\n"
      << Printed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRoundTripTest,
                         testing::Range<uint64_t>(1, 6));

TEST(PrinterRoundTripTest, HandWrittenProgramSurvivesRoundTrip) {
  const char *Source =
      "extern void *malloc(unsigned long);\n"
      "struct node { struct node *next; int *data; };\n"
      "int x, y;\n"
      "int *swapbuf[2];\n"
      "void swap(int **a, int **b) { int *t = *a; *a = *b; *b = t; }\n"
      "int *pick(int *p, int *q) { return x ? p : q; }\n"
      "int main(void) {\n"
      "  int *p = &x;\n"
      "  int *q = &y;\n"
      "  for (int i = 0; i < 2; i++) { swap(&p, &q); }\n"
      "  do { p = pick(p, q); } while (y);\n"
      "  switch (x) { case 1: q = p; break; default: break; }\n"
      "  struct node *n = (struct node *)malloc(16);\n"
      "  n->data = p;\n"
      "  return 0;\n"
      "}\n";
  auto Unit = parseOk(Source);
  auto Reparsed = parseOk(printUnit(*Unit));
  EXPECT_EQ(analyzePointsTo(*Unit), analyzePointsTo(*Reparsed));
}
