//===- bench/table2_plain_oracle.cpp - Reproduction of Table 2 -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 2: edges in the final graph, total edge
/// additions (Work, including redundant ones), and analysis time for the
/// four non-online configurations — SF-Plain, IF-Plain, SF-Oracle,
/// IF-Oracle. The oracle runs bound what any cycle elimination can
/// achieve; the plain runs show that cycles are the scalability problem.
///
/// Expected shape (paper Section 4): the bulk of work and time is
/// attributable to SCCs; without cycles both forms scale well (oracle
/// columns), while the plain columns blow up — IF-Plain worse than
/// SF-Plain because cycles add many redundant variable-variable edges in
/// inductive form.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Table 4 (legend): experiments ===\n");
  std::printf("SF-Plain   standard form, no cycle elimination\n");
  std::printf("IF-Plain   inductive form, no cycle elimination\n");
  std::printf("SF-Oracle  standard form, full (oracle) cycle elimination\n");
  std::printf("IF-Oracle  inductive form, full (oracle) cycle elimination\n");
  std::printf("SF-Online  standard form, online cycle elimination\n");
  std::printf("IF-Online  inductive form, online cycle elimination\n\n");

  std::printf("=== Table 2: SF-Plain, IF-Plain, SF-Oracle, IF-Oracle ===\n");
  Env.print();

  TextTable Table({"Benchmark", "AST", "SFp-Edges", "SFp-Work", "SFp-s",
                   "IFp-Edges", "IFp-Work", "IFp-s", "SFo-Edges", "SFo-Work",
                   "SFo-s", "IFo-Edges", "IFo-Work", "IFo-s"});

  for (auto &Entry : prepareSuite(Env)) {
    std::vector<std::string> Row = {Entry->Program->Spec.Name,
                                    formatGrouped(Entry->Program->AstNodes)};
    const std::pair<GraphForm, CycleElim> Configs[] = {
        {GraphForm::Standard, CycleElim::None},
        {GraphForm::Inductive, CycleElim::None},
        {GraphForm::Standard, CycleElim::Oracle},
        {GraphForm::Inductive, CycleElim::Oracle},
    };
    for (auto [Form, Elim] : Configs) {
      MeasuredRun Run = runConfig(*Entry, Form, Elim, Env);
      Row.push_back(capped(Run.Result.FinalEdges, Run.Capped));
      Row.push_back(capped(Run.Result.Stats.Work, Run.Capped));
      Row.push_back(cappedTime(Run.BestSeconds, Run.Capped));
    }
    Table.addRow(std::move(Row));
  }
  Table.print();
  std::printf("\n\">\" rows hit the plain-run work cap "
              "(POCE_BENCH_MAXWORK); values are lower bounds.\n");
  return 0;
}
