//===- bench/ablation_wave.cpp - Worklist vs wave closure schedules --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension bench: the closure-schedule ablation. For each graph form
/// (SF/IF) and elimination strategy (None/Online/Periodic) the same random
/// constraint system is closed three ways — the eager worklist, the wave
/// schedule over plain adjacency lists, and the wave schedule over the
/// CSR successor layout — and the hot-path counters are printed next to
/// the timings. Two emission orders bound the design space: edges_first
/// is the cascade worst case for eager singleton deltas (every source
/// arrival re-walks the finished graph one delta at a time), facts_first
/// is the bulk-load pattern where the eager schedule already batches
/// well and waves can only match it.
///
/// Least-solution checksums are asserted identical across the three
/// variants; a divergence aborts the bench with an error.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "workload/RandomConstraints.h"

using namespace poce;
using namespace poce::bench;

namespace {

/// emitRandomConstraints with a selectable order (the library emitter is
/// pinned to edges-first).
void emitOrdered(const RandomConstraintShape &Shape, ConstraintSolver &Solver,
                 bool FactsFirst) {
  TermTable &Terms = Solver.terms();
  ConstructorTable &Constructors = Terms.mutableConstructors();
  std::vector<ExprId> Vars, Sources, Sinks;
  for (uint32_t I = 0; I != Shape.NumVars; ++I)
    Vars.push_back(Terms.var(Solver.freshVar("X" + std::to_string(I))));
  for (uint32_t I = 0; I != Shape.NumSources; ++I)
    Sources.push_back(Terms.cons(
        Constructors.getOrCreate("src" + std::to_string(I), {}), {}));
  for (uint32_t I = 0; I != Shape.NumSinks; ++I)
    Sinks.push_back(Terms.cons(
        Constructors.getOrCreate("snk" + std::to_string(I), {}), {}));
  auto emitFacts = [&] {
    for (const auto &[Source, Var] : Shape.SourceVar)
      Solver.addConstraint(Sources[Source], Vars[Var]);
    for (const auto &[Var, Sink] : Shape.VarSink)
      Solver.addConstraint(Vars[Var], Sinks[Sink]);
  };
  auto emitEdges = [&] {
    for (const auto &[From, To] : Shape.VarVar)
      Solver.addConstraint(Vars[From], Vars[To]);
  };
  if (FactsFirst) {
    emitFacts();
    emitEdges();
  } else {
    emitEdges();
    emitFacts();
  }
}

struct Variant {
  const char *Name;
  ClosureMode Closure;
  bool SoA;
};

const Variant Variants[] = {
    {"worklist", ClosureMode::Worklist, true},
    {"wave", ClosureMode::Wave, false},
    {"wave+soa", ClosureMode::Wave, true},
};

struct RunResult {
  double BestSeconds = 0;
  SolverStats Stats;
  size_t SolutionBits = 0;
};

RunResult runVariant(const RandomConstraintShape &Shape, bool FactsFirst,
                     GraphForm Form, CycleElim Elim, const Variant &V,
                     unsigned Repeats) {
  RunResult Out;
  for (unsigned Repeat = 0; Repeat != Repeats; ++Repeat) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Form, Elim);
    Options.Closure = V.Closure;
    Options.WaveSoA = V.SoA;
    Timer T;
    ConstraintSolver Solver(Terms, Options);
    emitOrdered(Shape, Solver, FactsFirst);
    Solver.finalize();
    size_t Bits = 0;
    for (VarId Var = 0; Var != Solver.numVars(); ++Var)
      Bits += Solver.leastSolution(Var).size();
    double Seconds = T.seconds();
    if (Repeat == 0 || Seconds < Out.BestSeconds)
      Out.BestSeconds = Seconds;
    Out.Stats = Solver.stats();
    Out.SolutionBits = Bits;
  }
  return Out;
}

} // namespace

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Ablation: closure schedule (worklist vs wave vs "
              "wave+soa) ===\n");
  Env.print();

  struct ShapeSpec {
    const char *Name;
    uint32_t NumVars, NumCons;
    double Degree;
    uint64_t Seed;
    bool FactsFirst;
  };
  const ShapeSpec Shapes[] = {
      {"cascade", 4000, 2600, 2.0, 105, /*FactsFirst=*/false},
      {"bulkload", 6000, 4000, 2.0, 101, /*FactsFirst=*/true},
  };
  const struct {
    const char *Name;
    GraphForm Form;
    CycleElim Elim;
  } Configs[] = {
      {"SF-Plain", GraphForm::Standard, CycleElim::None},
      {"SF-Online", GraphForm::Standard, CycleElim::Online},
      {"SF-Periodic", GraphForm::Standard, CycleElim::Periodic},
      {"IF-Plain", GraphForm::Inductive, CycleElim::None},
      {"IF-Online", GraphForm::Inductive, CycleElim::Online},
      {"IF-Periodic", GraphForm::Inductive, CycleElim::Periodic},
  };

  TextTable Table({"Shape", "Config", "Variant", "Time(s)", "Work",
                   "DeltaProps", "Pruned", "LSwords", "Passes", "Levels",
                   "Fallbacks"});
  bool Diverged = false;
  for (const ShapeSpec &Spec : Shapes) {
    PRNG Rng(Spec.Seed);
    uint32_t NumVars = std::max<uint32_t>(
        8, static_cast<uint32_t>(Spec.NumVars * Env.Scale));
    uint32_t NumCons = std::max<uint32_t>(
        4, static_cast<uint32_t>(Spec.NumCons * Env.Scale));
    RandomConstraintShape Shape =
        randomConstraintShape(NumVars, NumCons, Spec.Degree / NumVars, Rng);

    for (const auto &Config : Configs) {
      size_t ReferenceBits = 0;
      bool HaveReference = false;
      for (const Variant &V : Variants) {
        RunResult R = runVariant(Shape, Spec.FactsFirst, Config.Form,
                                 Config.Elim, V, Env.Repeats);
        if (!HaveReference) {
          ReferenceBits = R.SolutionBits;
          HaveReference = true;
        } else if (R.SolutionBits != ReferenceBits) {
          std::fprintf(stderr,
                       "error: %s %s %s: solution checksum diverged "
                       "(%zu vs %zu)\n",
                       Spec.Name, Config.Name, V.Name, R.SolutionBits,
                       ReferenceBits);
          Diverged = true;
        }
        auto Hot = R.Stats.hotPathCounters();
        Table.addRow({Spec.Name, Config.Name, V.Name,
                      formatDouble(R.BestSeconds, 3),
                      formatGrouped(R.Stats.Work),
                      formatGrouped(Hot[0].Value),
                      formatGrouped(Hot[1].Value),
                      formatGrouped(Hot[2].Value),
                      formatGrouped(R.Stats.WavePasses),
                      formatGrouped(R.Stats.LevelsPropagated),
                      formatGrouped(R.Stats.WaveFallbacks)});
      }
    }
  }
  Table.print();
  std::printf("\nThe cascade shape is where the schedule matters: eager "
              "closure pays one graph walk per singleton delta, the wave "
              "schedule batches them into level-ordered sweeps (compare "
              "DeltaProps), and the CSR layout removes the pointer-chase "
              "from each sweep. On the bulk-load shape the eager schedule "
              "already delivers whole source sets and the three variants "
              "converge.\n");
  return Diverged ? 1 : 0;
}
