file(REMOVE_RECURSE
  "libpoce_andersen.a"
)
