//===- setcon/ConstraintFile.h - Textual constraint systems -----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-text interchange format for inclusion constraint systems, so
/// the solver can be driven without a language frontend (and so systems
/// can be captured, replayed, and golden-tested). Format:
///
///     # comment
///     var X Y Z T                 # declare set variables
///     cons a                      # nullary constructor
///     cons ref + + -              # arity/variance: + covariant, - contra
///
///     a <= X                      # one constraint per line
///     X <= Y
///     ref(a, X, X) <= ref(1, T, 0)
///
/// Every name must be declared before use; `0` and `1` are the constants.
/// Parsing retains the system in a replayable form: emit() can feed any
/// number of solvers (deterministically, so oracle construction works).
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_CONSTRAINTFILE_H
#define POCE_SETCON_CONSTRAINTFILE_H

#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "support/Status.h"

#include <map>
#include <string>
#include <vector>

namespace poce {

/// A parsed, replayable constraint system.
class ConstraintSystemFile {
public:
  /// Parses \p Text; on failure returns a ParseError Status with a
  /// line-numbered message.
  Status parse(const std::string &Text);

  /// Feeds the system into \p Solver: declares constructors (idempotent),
  /// creates the variables in declaration order, and adds every
  /// constraint.
  void emit(ConstraintSolver &Solver) const;

  /// Parses and applies one line of the file format against a live
  /// solver: `var`/`cons` lines extend this system's declarations (fresh
  /// variables are created in \p Solver immediately, keeping declaration
  /// order aligned with creation order), and a constraint line is
  /// recorded and fed through Solver.addConstraint — the solver is fully
  /// online, so consequences (including cycle elimination) propagate
  /// right away. Blank and comment lines are accepted no-ops. On failure
  /// returns ParseError (or FailedPrecondition when system and solver
  /// have diverged) and leaves system and solver unchanged. This is the
  /// serve layer's incremental entry point.
  Status addLine(const std::string &Line, ConstraintSolver &Solver);

  /// Dry-run of addLine(): parses \p Line and performs every validation
  /// addLine() would — name clashes, declaration/creation alignment,
  /// constructor signature agreement with \p Solver — without mutating
  /// the system or the solver. A line that passes checkLine() cannot be
  /// rejected by a subsequent addLine() (the solver itself may still
  /// abort on a resource budget). Lets callers make a line durable (WAL)
  /// only once it is known to be applicable.
  Status checkLine(const std::string &Line,
                   const ConstraintSolver &Solver) const;

  /// Rebuilds this system's declarations from a live solver — variables
  /// from creation order, constructors from the constructor table — so
  /// subsequent addLine() calls can reference everything the solver
  /// already knows. Recorded constraints are cleared (the solver's graph
  /// already contains them). Used after loading a snapshot that has no
  /// accompanying source text. Fails (leaving the system unchanged) when
  /// variable names are not unique or collide with constructor names,
  /// since the textual format keys on names.
  Status adoptDeclarations(const ConstraintSolver &Solver);

  /// Parses \p Line as a constraint (var/cons/blank lines are rejected
  /// with InvalidArgument) and renders it back in canonical text — the
  /// exact tag addLine()/emit() record with the solver, so retraction by
  /// line text is whitespace- and comment-insensitive.
  Status canonicalizeConstraint(const std::string &Line,
                                const ConstraintSolver &Solver,
                                std::string &Canon) const;

  /// Removes the first recorded constraint whose canonical text equals
  /// \p Canon, keeping system and solver provenance aligned after a
  /// successful ConstraintSolver::retract. Returns false if none
  /// matches.
  bool removeConstraint(const std::string &Canon);

  /// Adapter for buildOracle().
  GeneratorFn generator() const;

  /// Renders the system back to the file format (normalized whitespace).
  std::string str() const;

  const std::vector<std::string> &varNames() const { return VarNames; }

  /// The VarId of \p Name in a solver the system was emitted into
  /// (variables are created in declaration order, so ids equal indices —
  /// modulo oracle witness substitution, which callers resolve via the
  /// solver's creation-index API).
  uint32_t varIndex(const std::string &Name) const;

  uint32_t numConstraints() const {
    return static_cast<uint32_t>(Constraints.size());
  }

  static constexpr uint32_t NotFound = ~0U;

private:
  /// A parsed set expression, independent of any TermTable.
  struct FileExpr {
    enum class Kind : uint8_t { Zero, One, Var, Apply };
    Kind K = Kind::Zero;
    uint32_t VarIndex = 0;  ///< Var.
    uint32_t ConsIndex = 0; ///< Apply: index into ConsDecls.
    std::vector<FileExpr> Args;
  };

  struct ConsDecl {
    std::string Name;
    std::vector<Variance> ArgVariance;
  };

  /// One line of the file format in parsed-but-unapplied form, shared by
  /// checkLine() (parse + validate only) and addLine() (parse + validate
  /// + apply).
  struct ParsedLine {
    enum class Kind : uint8_t { Blank, Vars, Cons, Constraint };
    Kind K = Kind::Blank;
    std::vector<std::string> Names; ///< Vars: the declared names.
    ConsDecl Decl;                  ///< Cons.
    FileExpr Lhs, Rhs;              ///< Constraint.
  };

  /// Parses one line and checks it against this system's declarations
  /// and \p Solver's state without mutating either. On success \p Out
  /// holds everything needed to apply the line.
  Status parseLine(const std::string &Line, const ConstraintSolver &Solver,
                   ParsedLine &Out) const;

  ExprId build(const FileExpr &E, ConstraintSolver &Solver,
               const std::vector<VarId> &Vars) const;
  std::string exprToText(const FileExpr &E) const;

  /// Recursive-descent expression parser over \p Line starting at
  /// \p Pos (advanced past the expression on success).
  bool parseExprAt(const std::string &Line, size_t &Pos, FileExpr &Out,
                   std::string &Error) const;

  std::vector<std::string> VarNames;
  std::map<std::string, uint32_t> VarIndexOf;
  std::vector<ConsDecl> ConsDecls;
  std::map<std::string, uint32_t> ConsIndexOf;
  std::vector<std::pair<FileExpr, FileExpr>> Constraints;
};

} // namespace poce

#endif // POCE_SETCON_CONSTRAINTFILE_H
