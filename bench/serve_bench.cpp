//===- bench/serve_bench.cpp - Socket serving load generator --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Load generator for the network serving layer: starts an in-process
/// socket-mode server (net/Server.h) over a Unix-domain socket, hammers
/// it with closed-loop reader clients while one writer client streams
/// adds, and reports client-observed throughput and latency percentiles
/// (p50/p99/p999). Because reads execute against RCU-published views and
/// writes flow through the single writer lane, the interesting numbers
/// are the read latencies *while adds are in flight* — the design claim
/// is that they do not spike.
///
/// Correctness is cross-checked, not assumed: after the load phase the
/// serving answers for a variable sample are compared — via checksum —
/// against a fresh from-scratch solve of the base system plus the exact
/// add lines the writer sent. A mismatch fails the run (exit 1).
///
///   serve_bench                      print the summary table
///   serve_bench --emit_trajectory    also append a timestamped run to
///                                    BENCH_micro_solver.json (or
///                                    --emit_trajectory=PATH)
///
/// Environment: POCE_BENCH_SCALE scales the workload, POCE_BENCH_THREADS
/// sets the server's read lanes (0 = hardware), POCE_SERVE_CLIENTS the
/// reader count. Trajectory entries record the lane/client counts and a
/// single-CPU caveat: on a one-core container every thread time-shares,
/// so tail latencies include scheduler queueing, not just server work.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "net/Client.h"
#include "net/Server.h"
#include "serve/QueryEngine.h"
#include "serve/ServerCore.h"
#include "setcon/ConstraintFile.h"
#include "support/Metrics.h"
#include "support/PRNG.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace poce;

namespace {

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A base system in constraint-file text: Vars copy-connected with
/// address-of edges through ref() so ls/pts/alias queries all have real
/// work to do. Deterministic in Seed.
std::string makeBaseSystem(uint32_t Vars, uint32_t Cons, uint64_t Seed) {
  PRNG Rng(Seed);
  uint32_t Locs = std::max<uint32_t>(4, Vars / 4);
  std::string Text = "cons ref + + -\n";
  for (uint32_t L = 0; L != Locs; ++L)
    Text += "cons l" + std::to_string(L) + "\n";
  for (uint32_t V = 0; V != Vars; ++V)
    Text += "var v" + std::to_string(V) + "\n";
  for (uint32_t C = 0; C != Cons; ++C) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(Vars));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(Vars));
    if (Rng.nextBelow(3) == 0) {
      uint32_t L = static_cast<uint32_t>(Rng.nextBelow(Locs));
      Text += "ref(l" + std::to_string(L) + ", v" + std::to_string(A) +
              ", v" + std::to_string(A) + ") <= v" + std::to_string(B) +
              "\n";
    } else {
      Text += "v" + std::to_string(A) + " <= v" + std::to_string(B) + "\n";
    }
  }
  return Text;
}

serve::SolverBundle buildBundle(const std::string &Text,
                                std::string &Error) {
  serve::SolverBundle Bundle;
  Bundle.Constructors = std::make_unique<ConstructorTable>();
  Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
  Bundle.Solver = std::make_unique<ConstraintSolver>(
      *Bundle.Terms, makeConfig(GraphForm::Inductive, CycleElim::Online));
  ConstraintSystemFile System;
  Status Parsed = System.parse(Text);
  if (!Parsed) {
    Error = Parsed.toString();
    return Bundle;
  }
  System.emit(*Bundle.Solver);
  Bundle.Solver->materializeAllViews();
  return Bundle;
}

/// One request with client-side timing; aborts the process on transport
/// errors (a load generator has nothing useful to do with them).
std::string timedAsk(net::LineClient &Client, const std::string &Line,
                     std::vector<uint64_t> *LatenciesUs) {
  uint64_t Start = nowUs();
  std::string Reply;
  Status Got = Client.request(Line, Reply);
  if (!Got.ok()) {
    std::fprintf(stderr, "serve_bench: '%s': %s\n", Line.c_str(),
                 Got.toString().c_str());
    std::exit(1);
  }
  if (LatenciesUs)
    LatenciesUs->push_back(nowUs() - Start);
  return Reply;
}

uint64_t percentile(const std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  return Sorted[std::min(Rank, Sorted.size() - 1)];
}

uint64_t fnv1a(uint64_t Hash, const std::string &Text) {
  for (unsigned char C : Text) {
    Hash ^= C;
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string TrajectoryPath;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--emit_trajectory") == 0)
      TrajectoryPath = "BENCH_micro_solver.json";
    else if (std::strncmp(Argv[I], "--emit_trajectory=", 18) == 0)
      TrajectoryPath = Argv[I] + 18;
    else {
      std::fprintf(stderr, "usage: serve_bench [--emit_trajectory[=PATH]]\n");
      return 1;
    }
  }

  double Scale = 1.0;
  if (const char *Env = std::getenv("POCE_BENCH_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0)
    Scale = 1.0;
  unsigned Lanes = 2;
  if (const char *Env = std::getenv("POCE_BENCH_THREADS"))
    Lanes = ThreadPool::resolveThreads(
        static_cast<unsigned>(std::atoi(Env)));
  unsigned Readers = 3;
  if (const char *Env = std::getenv("POCE_SERVE_CLIENTS"))
    Readers = std::max(1, std::atoi(Env));

  const uint32_t Vars = std::max<uint32_t>(16, uint32_t(1200 * Scale));
  const uint32_t Cons = std::max<uint32_t>(8, uint32_t(900 * Scale));
  const uint32_t Adds = std::max<uint32_t>(4, uint32_t(150 * Scale));
  const uint32_t QueriesPerReader =
      std::max<uint32_t>(16, uint32_t(1500 * Scale));
  const uint64_t Seed = 0x706f6365u;

  std::string BaseText = makeBaseSystem(Vars, Cons, Seed);
  std::string Error;
  serve::SolverBundle Bundle = buildBundle(BaseText, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "serve_bench: workload: %s\n", Error.c_str());
    return 1;
  }

  serve::ServerCore Core(std::move(Bundle), /*CacheCapacity=*/512, {});
  if (!Core.valid()) {
    std::fprintf(stderr, "serve_bench: %s\n", Core.initError().c_str());
    return 1;
  }
  Status Recovered = Core.recover(0);
  if (!Recovered.ok()) {
    std::fprintf(stderr, "serve_bench: %s\n", Recovered.toString().c_str());
    return 1;
  }

  const char *Tmp = std::getenv("TMPDIR");
  std::string SockPath = std::string(Tmp ? Tmp : "/tmp") +
                         "/poce_serve_bench." +
                         std::to_string(::getpid()) + ".sock";
  net::NetServerOptions Opts;
  Opts.UnixPath = SockPath;
  Opts.Lanes = Lanes;
  net::NetServer Server(Core, Opts);
  Status Ready = Server.init();
  if (!Ready.ok()) {
    std::fprintf(stderr, "serve_bench: %s\n", Ready.toString().c_str());
    return 1;
  }
  int ExitCode = -1;
  std::thread Loop([&] { ExitCode = Server.run(); });

  std::printf("# serve_bench: vars=%u base_cons=%u adds=%u readers=%u "
              "lanes=%u scale=%.2f\n",
              Vars, Cons, Adds, Readers, Lanes, Scale);

  // Load phase: Readers closed-loop query clients + one writer client.
  // The writer's add lines are recorded verbatim for the cross-check.
  std::vector<std::string> AddedLines;
  AddedLines.reserve(Adds * 2);
  std::vector<std::vector<uint64_t>> ReaderLat(Readers);
  std::vector<uint64_t> WriterLat;
  std::atomic<bool> WriterDone{false};
  uint64_t BenchStart = nowUs();

  std::thread WriterThread([&] {
    net::LineClient W;
    if (!W.connectUnix(SockPath).ok())
      std::exit(1);
    PRNG Rng(Seed + 1);
    for (uint32_t K = 0; K != Adds; ++K) {
      std::string Tag = "a" + std::to_string(K);
      uint32_t Target = static_cast<uint32_t>(Rng.nextBelow(Vars));
      std::string Decl = "cons " + Tag;
      std::string Edge = Tag + " <= v" + std::to_string(Target);
      if (timedAsk(W, "add " + Decl, &WriterLat) != "ok added" ||
          timedAsk(W, "add " + Edge, &WriterLat) != "ok added") {
        std::fprintf(stderr, "serve_bench: add rejected\n");
        std::exit(1);
      }
      AddedLines.push_back(Decl);
      AddedLines.push_back(Edge);
    }
    WriterDone.store(true, std::memory_order_release);
  });

  std::vector<std::thread> ReaderThreads;
  for (unsigned R = 0; R != Readers; ++R) {
    ReaderThreads.emplace_back([&, R] {
      net::LineClient C;
      if (!C.connectUnix(SockPath).ok())
        std::exit(1);
      PRNG Rng(Seed + 100 + R);
      for (uint32_t Q = 0; Q != QueriesPerReader; ++Q) {
        uint32_t A = static_cast<uint32_t>(Rng.nextBelow(Vars));
        uint32_t B = static_cast<uint32_t>(Rng.nextBelow(Vars));
        switch (Rng.nextBelow(3)) {
        case 0:
          timedAsk(C, "ls v" + std::to_string(A), &ReaderLat[R]);
          break;
        case 1:
          timedAsk(C, "pts v" + std::to_string(A), &ReaderLat[R]);
          break;
        default:
          timedAsk(C,
                   "alias v" + std::to_string(A) + " v" + std::to_string(B),
                   &ReaderLat[R]);
          break;
        }
      }
    });
  }

  WriterThread.join();
  for (std::thread &T : ReaderThreads)
    T.join();
  double WallSeconds = double(nowUs() - BenchStart) / 1e6;

  // Cross-check: a fresh solve of base + the exact added lines must give
  // byte-identical answers for a variable sample. Checksum both sides.
  std::string FullText = BaseText;
  for (const std::string &Line : AddedLines)
    FullText += Line + "\n";
  serve::SolverBundle FreshBundle = buildBundle(FullText, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "serve_bench: cross-check solve: %s\n",
                 Error.c_str());
    return 1;
  }
  serve::QueryEngine Fresh(std::move(FreshBundle));
  if (!Fresh.valid()) {
    std::fprintf(stderr, "serve_bench: cross-check engine: %s\n",
                 Fresh.initError().c_str());
    return 1;
  }

  net::LineClient Checker;
  if (!Checker.connectUnix(SockPath).ok()) {
    std::fprintf(stderr, "serve_bench: cross-check connect failed\n");
    return 1;
  }
  uint64_t ServedSum = 14695981039346656037ULL;
  uint64_t FreshSum = 14695981039346656037ULL;
  uint32_t SampleStep = std::max<uint32_t>(1, Vars / 256);
  for (uint32_t V = 0; V < Vars; V += SampleStep) {
    std::string Name = "v" + std::to_string(V);
    std::string Served = timedAsk(Checker, "ls " + Name, nullptr);
    uint32_t Var = Fresh.varOf(Name);
    std::string Local =
        Var == serve::QueryEngine::NotFound
            ? std::string("err")
            : "ok " + serve::render::renderSet(Fresh.ls(Var));
    ServedSum = fnv1a(ServedSum, Served);
    FreshSum = fnv1a(FreshSum, Local);
  }
  bool ChecksumMatch = ServedSum == FreshSum;

  // Server-side concurrency counters (same process, same registry).
  MetricsRegistry &Registry = MetricsRegistry::global();
  uint64_t ReadsDuringAdd =
      Registry.counter("poce_net_reads_during_write_total").value();
  uint64_t Publishes =
      Registry.counter("poce_net_view_publishes_total").value();

  std::string Bye = timedAsk(Checker, "shutdown", nullptr);
  Loop.join();
  if (Bye != "ok shutting_down" || ExitCode != 0) {
    std::fprintf(stderr, "serve_bench: shutdown failed (reply '%s', "
                         "exit %d)\n",
                 Bye.c_str(), ExitCode);
    return 1;
  }

  std::vector<uint64_t> All;
  for (const std::vector<uint64_t> &L : ReaderLat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  std::sort(WriterLat.begin(), WriterLat.end());
  uint64_t TotalQueries = All.size();
  double Qps = WallSeconds > 0 ? double(TotalQueries) / WallSeconds : 0;

  std::printf("read queries:  %llu in %.3fs (%.0f req/s)\n",
              (unsigned long long)TotalQueries, WallSeconds, Qps);
  std::printf("read latency:  p50=%lluus p99=%lluus p999=%lluus\n",
              (unsigned long long)percentile(All, 0.50),
              (unsigned long long)percentile(All, 0.99),
              (unsigned long long)percentile(All, 0.999));
  std::printf("write latency: p50=%lluus p99=%lluus (%u adds)\n",
              (unsigned long long)percentile(WriterLat, 0.50),
              (unsigned long long)percentile(WriterLat, 0.99), Adds * 2);
  std::printf("reads while a writer batch was in flight: %llu; view "
              "publishes: %llu\n",
              (unsigned long long)ReadsDuringAdd,
              (unsigned long long)Publishes);
  std::printf("answers vs fresh solve: %s\n",
              ChecksumMatch ? "checksums match" : "MISMATCH");
  if (!ChecksumMatch)
    return 1;

  if (!TrajectoryPath.empty()) {
    std::string Prior = bench::readPriorRuns(TrajectoryPath);
    std::FILE *File = std::fopen(TrajectoryPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "serve_bench: cannot open '%s'\n",
                   TrajectoryPath.c_str());
      return 1;
    }
    std::fprintf(File, "{\n  \"bench\": \"micro_solver\",\n  \"runs\": [\n");
    if (!Prior.empty())
      std::fprintf(File, "%s,\n", Prior.c_str());
    std::fprintf(
        File,
        "  {\"timestamp\": \"%s\", \"mode\": \"serve_bench\",\n"
        "   \"threads\": %u, \"clients\": %u, \"scale\": %.2f,\n"
        "   \"note\": \"single-CPU container: server lanes and clients "
        "time-share one core, so tail latencies include scheduler "
        "queueing\",\n"
        "   \"entries\": [\n"
        "    {\"name\": \"serve_mixed\", \"vars\": %u, \"base_cons\": %u,\n"
        "     \"queries\": %llu, \"adds\": %u, \"wall_s\": %.6f,\n"
        "     \"qps\": %.1f, \"p50_us\": %llu, \"p99_us\": %llu,\n"
        "     \"p999_us\": %llu, \"write_p99_us\": %llu,\n"
        "     \"reads_during_add\": %llu, \"publishes\": %llu,\n"
        "     \"answers_checksum_match\": %s}\n"
        "   ]}\n  ]\n}\n",
        bench::utcTimestamp().c_str(), Lanes, Readers, Scale, Vars, Cons,
        (unsigned long long)TotalQueries, Adds * 2, WallSeconds, Qps,
        (unsigned long long)percentile(All, 0.50),
        (unsigned long long)percentile(All, 0.99),
        (unsigned long long)percentile(All, 0.999),
        (unsigned long long)percentile(WriterLat, 0.99),
        (unsigned long long)ReadsDuringAdd, (unsigned long long)Publishes,
        ChecksumMatch ? "true" : "false");
    std::fclose(File);
    std::printf("# appended serve_bench run to %s\n",
                TrajectoryPath.c_str());
  }
  return 0;
}
