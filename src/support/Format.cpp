//===- support/Format.cpp - Text tables and number formatting -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cstring>

using namespace poce;

std::string poce::formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string poce::formatGrouped(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}

TextTable::TextTable(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Rows[0].size() && "row width mismatch!");
  Rows.push_back(std::move(Row));
}

void TextTable::print(std::FILE *Out) const {
  size_t NumCols = Rows[0].size();
  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C != NumCols; ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != NumCols; ++C) {
      if (C == 0)
        std::fprintf(Out, "%-*s", static_cast<int>(Widths[C]), Row[C].c_str());
      else
        std::fprintf(Out, "  %*s", static_cast<int>(Widths[C]),
                     Row[C].c_str());
    }
    std::fputc('\n', Out);
  };

  printRow(Rows[0]);
  size_t TotalWidth = 0;
  for (size_t C = 0; C != NumCols; ++C)
    TotalWidth += Widths[C] + (C ? 2 : 0);
  for (size_t I = 0; I != TotalWidth; ++I)
    std::fputc('-', Out);
  std::fputc('\n', Out);
  for (size_t R = 1; R != Rows.size(); ++R)
    printRow(Rows[R]);
}
