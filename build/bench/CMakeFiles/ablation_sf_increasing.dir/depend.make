# Empty dependencies file for ablation_sf_increasing.
# This may be replaced when dependencies are built.
