//===- minic/Token.h - MiniC tokens -----------------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the MiniC lexer. MiniC
/// is the C subset consumed by the points-to case study: everything a
/// flow-insensitive, field-insensitive Andersen analysis can observe.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MINIC_TOKEN_H
#define POCE_MINIC_TOKEN_H

#include <cstdint>
#include <string>

namespace poce {
namespace minic {

/// Source position (1-based line and column).
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

enum class TokenKind : uint8_t {
  EndOfFile,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwBreak,
  KwCase,
  KwChar,
  KwConst,
  KwContinue,
  KwDefault,
  KwDo,
  KwDouble,
  KwElse,
  KwEnum,
  KwExtern,
  KwFloat,
  KwFor,
  KwIf,
  KwInt,
  KwLong,
  KwReturn,
  KwShort,
  KwSigned,
  KwSizeof,
  KwStatic,
  KwStruct,
  KwSwitch,
  KwTypedef,
  KwUnion,
  KwUnsigned,
  KwVoid,
  KwWhile,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Question,
  Dot,
  Arrow,
  Ellipsis,

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Exclaim,
  Less,
  Greater,
  LessLess,
  GreaterGreater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  ExclaimEqual,
  AmpAmp,
  PipePipe,
  PlusPlus,
  MinusMinus,

  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
};

/// Returns a human-readable spelling of \p Kind for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text holds the identifier/literal spelling.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  SourceLocation Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace minic
} // namespace poce

#endif // POCE_MINIC_TOKEN_H
