//===- serve/ServerCore.h - Writer-side serving pipeline --------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The writer half of a poce server, factored out of scserved's request
/// loop so the stdin/stdout driver and the socket front end (net/Server.h)
/// share one implementation of the durability pipeline: WAL recovery and
/// append-before-apply, budget rollback, atomic checkpoints with base-id
/// re-stamping, the degraded mode a post-rename checkpoint failure forces,
/// and the stats/counters/metrics reply builders.
///
/// Threading: a ServerCore is single-owner. The stdin driver calls it from
/// its request loop; the socket server calls it from its single writer
/// lane. Concurrent *reads* never touch it — they go through immutable
/// published ReadViews (net/ReadView.h) built from snapshots this core
/// serializes.
///
/// Every reply string and error code is byte-compatible with the PR 4/5
/// scserved loop (the serve_smoke.sh / crash_recovery.sh harnesses assert
/// on them), and the WAL invariant is unchanged: validation before
/// durability, durability before application, `ok added` implies the line
/// survives recovery.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_SERVERCORE_H
#define POCE_SERVE_SERVERCORE_H

#include "serve/QueryEngine.h"
#include "serve/Telemetry.h"
#include "serve/Wal.h"
#include "support/Status.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace poce {
namespace serve {

/// Lower-case hex rendering of a 64-bit id — the wire spelling of WAL
/// base ids and payload checksums in the replication verbs (`replicate`,
/// `rebase`, `verify`, `promote`). Parse with strtoull(.., 16).
inline std::string hexId(uint64_t Value) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%llx",
                static_cast<unsigned long long>(Value));
  return Buf;
}

/// One parsed request line: a verb, up to two whitespace-split arguments,
/// and the raw remainder after the verb (which preserves the spacing of
/// `add` constraint payloads).
struct Request {
  std::string Verb, Arg1, Arg2, Rest;
};

/// Splits \p Line into a Request (the wire format of both the stdin and
/// the socket protocol).
Request parseRequest(const std::string &Line);

/// Durability configuration of a ServerCore.
struct ServerCoreConfig {
  std::string SnapshotPath; ///< Startup snapshot path ("" = .scs base).
  std::string WalPath;      ///< Write-ahead log path ("" = WAL disarmed).
  uint64_t CheckpointEvery = 0; ///< Auto-checkpoint cadence (0 = never).
  uint64_t DeadlineMs = 0;      ///< Per-add closure deadline (0 = none).
  uint64_t EdgeBudget = 0;      ///< Per-add closure edge budget (0 = none).
  uint64_t MaxMemBytes = 0;     ///< Per-add RSS bound (0 = none).
};

/// Primary-side replication hooks, installed by the socket server's
/// writer lane. OnRecord fires after every durable, applied WAL append
/// (\p Seq is the record's index in the live log); OnRebase fires after
/// every WAL base-id re-stamp (checkpoints, and saves promoted to
/// checkpoints). Both run on the thread that owns the core, in event
/// order — a record event always precedes the rebase of the checkpoint
/// that absorbed it.
struct ReplicationSink {
  std::function<void(uint64_t Seq, const std::string &Line)> OnRecord;
  std::function<void(uint64_t NewBase)> OnRebase;
};

class ServerCore {
public:
  /// Wraps \p Bundle in a QueryEngine with \p CacheCapacity cached views.
  /// Check valid() before use.
  ServerCore(SolverBundle Bundle, size_t CacheCapacity,
             ServerCoreConfig Config);

  bool valid() const { return Engine.valid(); }
  const std::string &initError() const { return Engine.initError(); }

  /// Warm recovery: replays the WAL's intact lines on top of the loaded
  /// base identified by \p SnapBase (the snapshot's payload checksum, 0
  /// for a fresh .scs solve), detecting and skipping a stale log left by
  /// an interrupted checkpoint; then opens the log for appending, arms
  /// the configured budgets, and re-captures the rollback base. Notes go
  /// to stderr exactly as the PR 4 loop printed them.
  Status recover(uint64_t SnapBase);

  QueryEngine &engine() { return Engine; }
  const QueryEngine &engine() const { return Engine; }

  /// Handles one writer-side verb — add, retract, save, checkpoint,
  /// stats, counters, metrics, shutdown — and writes the full reply (one line,
  /// or the multi-line metrics payload) to \p Reply. Returns false for
  /// verbs this core does not own (queries, help, quit), leaving \p Reply
  /// untouched. A handled `shutdown` also flips shutdownRequested().
  bool handleWriterVerb(const Request &Req, std::string &Reply);

  /// True when a handled `shutdown` verb asked the caller to drain and
  /// exit (the caller owns the actual loop teardown).
  bool shutdownRequested() const { return ShutdownSeen; }

  /// Graceful drain: every acknowledged add is already fsynced, so this
  /// just closes the WAL cleanly (recovery replays it either way).
  void shutdownDrain() { Wal.close(); }

  /// The add pipeline (validate, WAL-append + fsync, apply, un-log on a
  /// budget rollback, auto-checkpoint) — `ok added` iff this returns OK.
  Status addLine(const std::string &Line);

  /// The retraction pipeline — the same durability contract as
  /// addLine(), with the record logged as `!retract <canonical line>`
  /// (a WAL v3 record; see serve/Wal.h) so warm recovery and followers
  /// replay the deletion in sequence with the adds around it. `ok
  /// retracted` iff this returns OK.
  Status retractLine(const std::string &Line);

  /// Atomic snapshot write; on success returns the byte count. A save
  /// over the startup snapshot is promoted to a checkpoint so the live
  /// WAL and restart agree on what the log extends.
  Expected<uint64_t> save(const std::string &Path);

  /// Atomic snapshot + WAL reset; "" targets the startup snapshot path.
  Status checkpoint(const std::string &Path);

  /// Server-loop counters (WAL/checkpoint state) for the telemetry
  /// builders.
  telemetry::ServerCounters counters() const;

  std::string statsReply() const {
    return telemetry::buildStatsReply(Engine, counters());
  }
  std::string countersReply() const {
    return telemetry::buildCountersReply(
        Engine, telemetry::queryLatencyHistogram());
  }
  std::string metricsReply() {
    return telemetry::buildMetricsReply(MetricsRegistry::global(), Engine,
                                        counters());
  }

  /// Dumps the registry (solver + serve counters exported) to \p Path as
  /// one JSON object, rewritten atomically.
  Status dumpMetricsTo(const std::string &Path);

  bool walArmed() const { return !Config.WalPath.empty(); }
  /// The WAL was disabled after a failed checkpoint; add/checkpoint are
  /// refused until restart (queries keep serving).
  bool walDegraded() const { return walArmed() && !Wal.isOpen(); }
  uint64_t walReplayed() const { return WalReplayed; }
  uint64_t walSkipped() const { return WalSkipped; }

  /// Serializes the engine's current graph (the published-view source for
  /// the socket server) and returns its payload checksum via
  /// \p ChecksumOut (may be null). Non-const: serialization finalizes any
  /// lazily deferred solver state first, which is why only the single
  /// writer lane may call it.
  Status serializeState(std::vector<uint8_t> &Bytes,
                        uint64_t *ChecksumOut = nullptr);

  /// Canonical state checksum for the `verify` verb: a hash over every
  /// variable's rendered least solution, with items and variables sorted.
  /// Deliberately NOT the serialized-byte checksum — a live primary and a
  /// load-and-replay follower may collapse cycles onto different (equally
  /// valid) representatives, so byte identity is the wrong convergence
  /// signal; answer identity is the claim replication actually makes.
  /// Writer-lane only (renders through the engine's view cache).
  uint64_t canonicalChecksum();

  /// \name Replication (primary side)
  /// @{

  /// Installs (or clears) the hooks that observe WAL appends and base-id
  /// re-stamps. Owner-thread only, like every other mutation.
  void setReplicationSink(ReplicationSink Sink) { Repl = std::move(Sink); }

  uint64_t walBaseId() const { return Wal.baseId(); }
  uint64_t walRecords() const { return Wal.records(); }

  /// Builds the full `replicate <base> <seq>` handshake reply: the header
  /// line plus every catch-up record the follower is missing. When the
  /// follower's (base, seq) cursor matches the live log the reply is
  /// `ok tail <base> <seq>` followed by records [seq, N); otherwise the
  /// disk snapshot is shipped inline — `ok snapshot <base> <nbytes>`, a
  /// newline, the raw snapshot bytes, then records [0, N). If the disk
  /// snapshot does not embody the WAL's base id yet (fresh .scs start, or
  /// a snapshot someone replaced), a checkpoint first brings the pair in
  /// sync. \p NextSeq receives the follower's post-catch-up cursor (the
  /// live record count); \p SnapshotShipped reports which arm was taken.
  /// Requires --snapshot and --wal; refused while the WAL is degraded.
  Status buildReplicateStream(uint64_t FollowerBase, uint64_t FollowerSeq,
                              std::string &Reply, uint64_t &NextSeq,
                              bool &SnapshotShipped);
  /// @}

  /// \name Replication (follower side)
  /// @{

  /// Applies one line shipped by the primary: validate, WAL-append +
  /// fsync, apply with budgets disabled (the line already fit the
  /// primary's budgets; re-aborting here would be divergence, not
  /// protection). No auto-checkpoint — the primary's rebase events drive
  /// the follower's checkpoint cadence. Any failure after validation is
  /// divergence; the caller must re-bootstrap rather than keep serving.
  Status applyReplicated(const std::string &Line);

  /// Mirrors a primary checkpoint: checkpoints locally, then requires the
  /// freshly stamped base id to equal \p ExpectedBase (the id the primary
  /// announced). A mismatch is returned as Corruption — the follower has
  /// diverged — but the local (snapshot, WAL) pair stays self-consistent.
  Status replicaRebase(uint64_t ExpectedBase);

  /// Replaces the whole engine state with a snapshot shipped by the
  /// primary, then persists the new pair: snapshot file first, WAL
  /// re-stamped (empty) at \p Base second, so a crash between the two
  /// leaves only a stale log that recovery already knows to skip.
  Status rebootstrap(const std::vector<uint8_t> &Bytes, uint64_t Base);

  /// Failover: re-stamps the WAL base id via a checkpoint to the startup
  /// snapshot path and returns the new base. The caller owns flipping its
  /// read-only gate; state is unchanged (a checkpoint only re-anchors
  /// durability).
  Expected<uint64_t> promote();
  /// @}

private:
  /// Atomic snapshot write shared by save and checkpoint; SizeOut and
  /// ChecksumOut are set as soon as serialization succeeds, even if the
  /// write then fails.
  Status saveSnapshot(const std::string &Path, size_t &SizeOut,
                      uint64_t &ChecksumOut);
  /// Enters degraded mode: closes the WAL with a stderr note.
  void disableWal(const std::string &Why);
  Status doCheckpoint(const std::string &Path);
  static uint64_t snapshotFileChecksum(const std::string &Path);

  QueryEngine Engine;
  ServerCoreConfig Config;
  WriteAheadLog Wal;
  ReplicationSink Repl;
  uint64_t WalReplayed = 0;
  uint64_t WalSkipped = 0;
  uint64_t Checkpoints = 0;
  uint64_t AddsSinceCheckpoint = 0;
  bool ShutdownSeen = false;
};

} // namespace serve
} // namespace poce

#endif // POCE_SERVE_SERVERCORE_H
