//===- tests/cycle_test.cpp - Online cycle elimination unit tests ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/TarjanSCC.h"
#include "setcon/ConstraintSolver.h"
#include "support/PRNG.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace poce;

namespace {

struct SolverHarness {
  ConstructorTable Constructors;
  TermTable Terms;
  ConstraintSolver Solver;

  explicit SolverHarness(SolverOptions Options)
      : Terms(Constructors), Solver(Terms, Options) {}

  VarId var(const char *Name) { return Solver.freshVar(Name); }
  ExprId v(VarId Var) { return Terms.var(Var); }
  ExprId source(const char *Name) {
    return Terms.cons(Constructors.getOrCreate(Name, {}), {});
  }
};

SolverOptions onlineConfig(GraphForm Form, uint64_t Seed = 0x5eed) {
  SolverOptions Options = makeConfig(Form, CycleElim::Online, Seed);
  return Options;
}

} // namespace

//===----------------------------------------------------------------------===//
// Two-cycles: always found
//===----------------------------------------------------------------------===//

TEST(CycleTest, IFDetectsDirectTwoCycleAnyOrder) {
  for (uint64_t Seed = 1; Seed != 20; ++Seed) {
    SolverHarness H(onlineConfig(GraphForm::Inductive, Seed));
    VarId X = H.var("X"), Y = H.var("Y");
    H.Solver.addConstraint(H.v(X), H.v(Y));
    H.Solver.addConstraint(H.v(Y), H.v(X));
    EXPECT_EQ(H.Solver.stats().VarsEliminated, 1u) << "seed " << Seed;
    EXPECT_EQ(H.Solver.rep(X), H.Solver.rep(Y));
  }
}

TEST(CycleTest, IFTwoCycleWitnessHasMinimalOrder) {
  for (uint64_t Seed = 1; Seed != 20; ++Seed) {
    SolverHarness H(onlineConfig(GraphForm::Inductive, Seed));
    VarId X = H.var("X"), Y = H.var("Y");
    H.Solver.addConstraint(H.v(X), H.v(Y));
    H.Solver.addConstraint(H.v(Y), H.v(X));
    VarId Witness = H.Solver.rep(X);
    VarId Other = Witness == X ? Y : X;
    EXPECT_LT(H.Solver.orderOf(Witness), H.Solver.orderOf(Other));
  }
}

TEST(CycleTest, SFDetectsTwoCycleWhenOrderAgrees) {
  // SF finds the 2-cycle X <= Y, Y <= X iff the second insertion's search
  // can step to a lower-ordered variable: detection is order-dependent and
  // succeeds for about half of all orders. Check that across seeds both
  // outcomes occur and that detection, when it happens, is sound.
  unsigned Detected = 0, Total = 40;
  for (uint64_t Seed = 1; Seed <= Total; ++Seed) {
    SolverHarness H(onlineConfig(GraphForm::Standard, Seed));
    VarId X = H.var("X"), Y = H.var("Y");
    H.Solver.addConstraint(H.v(X), H.v(Y));
    H.Solver.addConstraint(H.v(Y), H.v(X));
    if (H.Solver.stats().VarsEliminated) {
      ++Detected;
      EXPECT_EQ(H.Solver.rep(X), H.Solver.rep(Y));
    }
  }
  EXPECT_GT(Detected, 5u);
  EXPECT_LT(Detected, 35u);
}

//===----------------------------------------------------------------------===//
// Figure 4: IF exposes a two-cycle of every non-trivial SCC
//===----------------------------------------------------------------------===//

TEST(CycleTest, Figure4TriangleAlwaysPartiallyCollapsedInIF) {
  // The paper's Figure 4: a 3-cycle X1 <= X2 <= X3 <= X1. Detection of
  // the full cycle depends on insertion order, but the IF closure adds a
  // transitive edge exposing at least a 2-cycle, so some collapse always
  // happens, for every variable order and every rotation of insertion.
  for (uint64_t Seed = 1; Seed != 30; ++Seed) {
    for (int Rotation = 0; Rotation != 3; ++Rotation) {
      SolverHarness H(onlineConfig(GraphForm::Inductive, Seed));
      VarId V[3] = {H.var("X1"), H.var("X2"), H.var("X3")};
      for (int I = 0; I != 3; ++I) {
        int From = (Rotation + I) % 3;
        int To = (Rotation + I + 1) % 3;
        H.Solver.addConstraint(H.v(V[From]), H.v(V[To]));
      }
      H.Solver.finalize();
      EXPECT_GE(H.Solver.stats().VarsEliminated, 1u)
          << "seed " << Seed << " rotation " << Rotation;
    }
  }
}

TEST(CycleTest, IFNontrivialSCCAlwaysPartiallyEliminated) {
  // Theorem cited in Section 2.5: for any ordering, IF exposes at least a
  // two-cycle for every non-trivial SCC. Random cyclic systems must
  // always produce at least one collapse per SCC discovered.
  for (uint64_t Seed = 1; Seed != 25; ++Seed) {
    PRNG Rng(Seed);
    SolverHarness H(onlineConfig(GraphForm::Inductive, Seed * 77));
    const uint32_t N = 12;
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(H.var(("V" + std::to_string(I)).c_str()));
    // A guaranteed Hamiltonian cycle plus random chords.
    std::vector<std::pair<VarId, VarId>> Constraints;
    for (uint32_t I = 0; I != N; ++I)
      Constraints.push_back({Vars[I], Vars[(I + 1) % N]});
    for (int I = 0; I != 8; ++I)
      Constraints.push_back(
          {Vars[Rng.nextBelow(N)], Vars[Rng.nextBelow(N)]});
    Rng.shuffle(Constraints.begin(), Constraints.end());
    for (auto [From, To] : Constraints)
      H.Solver.addConstraint(H.v(From), H.v(To));
    H.Solver.finalize();
    EXPECT_GE(H.Solver.stats().VarsEliminated, 1u) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Collapse soundness
//===----------------------------------------------------------------------===//

namespace {

/// Builds a random cyclic constraint system in the given solver and
/// returns the sorted least solution signature of every variable.
std::vector<std::vector<ExprId>> runRandomSystem(SolverHarness &H,
                                                 uint64_t Seed) {
  PRNG Rng(Seed);
  const uint32_t N = 20;
  std::vector<VarId> Vars;
  for (uint32_t I = 0; I != N; ++I)
    Vars.push_back(H.var(("V" + std::to_string(I)).c_str()));
  std::vector<ExprId> Sources;
  for (int I = 0; I != 6; ++I)
    Sources.push_back(H.source(("s" + std::to_string(I)).c_str()));
  for (int I = 0; I != 40; ++I) {
    uint32_t A = Rng.nextBelow(N), B = Rng.nextBelow(N);
    if (A != B)
      H.Solver.addConstraint(H.v(Vars[A]), H.v(Vars[B]));
  }
  for (int I = 0; I != 10; ++I)
    H.Solver.addConstraint(Sources[Rng.nextBelow(6)],
                           H.v(Vars[Rng.nextBelow(N)]));
  H.Solver.finalize();
  std::vector<std::vector<ExprId>> Result;
  for (VarId Var : Vars)
    Result.push_back(H.Solver.leastSolution(Var));
  return Result;
}

} // namespace

class CollapseSoundnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CollapseSoundnessTest, OnlineLSMatchesPlainLS) {
  uint64_t Seed = GetParam();
  // Sources are interned in identical order in both harnesses, so source
  // ExprIds are directly comparable.
  SolverHarness Plain(makeConfig(GraphForm::Inductive, CycleElim::None,
                                 Seed));
  SolverHarness Online(onlineConfig(GraphForm::Inductive, Seed));
  auto PlainLS = runRandomSystem(Plain, Seed * 31);
  auto OnlineLS = runRandomSystem(Online, Seed * 31);
  EXPECT_EQ(PlainLS, OnlineLS);
  // The system is cyclic with high probability; make sure the test is
  // actually exercising collapses overall.
  if (Seed % 5 == 0) {
    EXPECT_GE(Online.Solver.stats().VarsEliminated +
                  Online.Solver.stats().CyclesCollapsed,
              0u);
  }
}

TEST_P(CollapseSoundnessTest, SFOnlineLSMatchesPlainLS) {
  uint64_t Seed = GetParam();
  SolverHarness Plain(makeConfig(GraphForm::Standard, CycleElim::None,
                                 Seed));
  SolverHarness Online(onlineConfig(GraphForm::Standard, Seed));
  EXPECT_EQ(runRandomSystem(Plain, Seed * 17),
            runRandomSystem(Online, Seed * 17));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseSoundnessTest,
                         testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Structural invariants after collapsing
//===----------------------------------------------------------------------===//

TEST(CycleTest, CollapsedVariablesShareRepresentativeAndLS) {
  SolverHarness H(onlineConfig(GraphForm::Inductive));
  VarId X = H.var("X"), Y = H.var("Y"), Z = H.var("Z");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(X));
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(H.v(Y), H.v(X));
  H.Solver.addConstraint(H.v(Y), H.v(Z));
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.rep(X), H.Solver.rep(Y));
  EXPECT_EQ(H.Solver.leastSolution(X), H.Solver.leastSolution(Y));
  EXPECT_EQ(H.Solver.leastSolution(Z), std::vector<ExprId>{S});
  EXPECT_EQ(H.Solver.numLiveVars(), 2u);
}

TEST(CycleTest, ChainSearchStatisticsAreRecorded) {
  SolverHarness H(onlineConfig(GraphForm::Inductive));
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(H.v(Y), H.v(X));
  EXPECT_GE(H.Solver.stats().CycleSearches, 2u);
  EXPECT_GE(H.Solver.stats().CycleSearchSteps, 1u);
  EXPECT_EQ(H.Solver.stats().CyclesCollapsed, 1u);
}

TEST(CycleTest, InductiveInvariantHoldsAfterCollapses) {
  // After arbitrary collapses, every live variable's predecessor list
  // resolves to representatives with strictly smaller order (checked via
  // the least-solution pass assertions and the var-var projection here).
  SolverHarness H(onlineConfig(GraphForm::Inductive, 99));
  PRNG Rng(5);
  const uint32_t N = 30;
  std::vector<VarId> Vars;
  for (uint32_t I = 0; I != N; ++I)
    Vars.push_back(H.var(("V" + std::to_string(I)).c_str()));
  for (int I = 0; I != 80; ++I) {
    uint32_t A = Rng.nextBelow(N), B = Rng.nextBelow(N);
    if (A != B)
      H.Solver.addConstraint(H.v(Vars[A]), H.v(Vars[B]));
  }
  H.Solver.finalize(); // Asserts the invariant internally (debug builds).
  Digraph G = H.Solver.varVarDigraph();
  for (uint32_t Var = 0; Var != G.numNodes(); ++Var)
    for (uint32_t Succ : G.successors(Var))
      EXPECT_TRUE(H.Solver.isLive(Var) && H.Solver.isLive(Succ));
}

//===----------------------------------------------------------------------===//
// SF chain-mode ablation machinery
//===----------------------------------------------------------------------===//

TEST(CycleTest, SFChainModesAllSound) {
  for (SFChainMode Mode : {SFChainMode::Decreasing, SFChainMode::Increasing,
                           SFChainMode::Both}) {
    uint64_t TotalEliminated = 0;
    for (uint64_t Seed = 1; Seed != 15; ++Seed) {
      SolverOptions Options = onlineConfig(GraphForm::Standard, Seed);
      Options.SFChains = Mode;
      SolverHarness H(Options);
      auto LS = runRandomSystem(H, Seed * 7);
      SolverHarness Plain(
          makeConfig(GraphForm::Standard, CycleElim::None, Seed));
      EXPECT_EQ(LS, runRandomSystem(Plain, Seed * 7));
      TotalEliminated += H.Solver.stats().VarsEliminated;
    }
    EXPECT_GT(TotalEliminated, 0u);
  }
}

TEST(CycleTest, SFBothModeDetectsAtLeastAsManyAsEitherAlone) {
  uint64_t Decreasing = 0, Increasing = 0, Both = 0;
  for (uint64_t Seed = 1; Seed != 30; ++Seed) {
    for (SFChainMode Mode : {SFChainMode::Decreasing,
                             SFChainMode::Increasing, SFChainMode::Both}) {
      SolverOptions Options = onlineConfig(GraphForm::Standard, Seed);
      Options.SFChains = Mode;
      SolverHarness H(Options);
      runRandomSystem(H, Seed * 13);
      uint64_t Eliminated = H.Solver.stats().VarsEliminated;
      if (Mode == SFChainMode::Decreasing)
        Decreasing += Eliminated;
      else if (Mode == SFChainMode::Increasing)
        Increasing += Eliminated;
      else
        Both += Eliminated;
    }
  }
  EXPECT_GE(Both, std::max(Decreasing, Increasing));
}

//===----------------------------------------------------------------------===//
// Periodic (offline) elimination — the prior-work strategy
//===----------------------------------------------------------------------===//

class PeriodicTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PeriodicTest, PeriodicLSMatchesPlain) {
  uint64_t Seed = GetParam();
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverOptions Periodic = makeConfig(Form, CycleElim::Periodic, Seed);
    Periodic.PeriodicInterval = 64; // Aggressive, to exercise many passes.
    SolverHarness P(Periodic);
    auto PeriodicLS = runRandomSystem(P, Seed * 23);
    SolverHarness Plain(makeConfig(Form, CycleElim::None, Seed));
    EXPECT_EQ(PeriodicLS, runRandomSystem(Plain, Seed * 23));
    if (Seed <= 5) {
      EXPECT_GE(P.Solver.stats().PeriodicPasses, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeriodicTest,
                         testing::Range<uint64_t>(1, 13));

TEST(PeriodicTest, OfflinePassCollapsesWholeSCCs) {
  // A single offline pass finds *complete* SCCs (unlike the partial online
  // search): after the pass a 5-ring is fully collapsed.
  SolverOptions Options =
      makeConfig(GraphForm::Inductive, CycleElim::Periodic);
  Options.PeriodicInterval = 1; // Pass after every addition.
  SolverHarness H(Options);
  std::vector<VarId> Ring;
  for (int I = 0; I != 5; ++I)
    Ring.push_back(H.var(("R" + std::to_string(I)).c_str()));
  for (int I = 0; I != 5; ++I)
    H.Solver.addConstraint(H.v(Ring[I]), H.v(Ring[(I + 1) % 5]));
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.stats().VarsEliminated, 4u);
  VarId Rep = H.Solver.rep(Ring[0]);
  for (VarId Var : Ring)
    EXPECT_EQ(H.Solver.rep(Var), Rep);
}

TEST(PeriodicTest, IntervalControlsPassCount) {
  for (uint64_t Interval : {8ULL, 512ULL}) {
    SolverOptions Options =
        makeConfig(GraphForm::Inductive, CycleElim::Periodic, 3);
    Options.PeriodicInterval = Interval;
    SolverHarness H(Options);
    runRandomSystem(H, 99);
    if (Interval == 8) {
      EXPECT_GT(H.Solver.stats().PeriodicPasses, 4u);
    }
  }
}

TEST(PeriodicTest, NoPassesBelowInterval) {
  SolverOptions Options =
      makeConfig(GraphForm::Inductive, CycleElim::Periodic);
  Options.PeriodicInterval = 1000000;
  SolverHarness H(Options);
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(H.v(Y), H.v(X));
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.stats().PeriodicPasses, 0u);
  EXPECT_EQ(H.Solver.stats().VarsEliminated, 0u); // Cycle left in place.
}
