file(REMOVE_RECURSE
  "CMakeFiles/ext_closure_analysis.dir/ext_closure_analysis.cpp.o"
  "CMakeFiles/ext_closure_analysis.dir/ext_closure_analysis.cpp.o.d"
  "ext_closure_analysis"
  "ext_closure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_closure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
