//===- graph/RandomGraph.cpp - Random graph generation --------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/RandomGraph.h"

#include <cmath>

using namespace poce;

// Iterates the positions of set trials in a Bernoulli(p) sequence of
// length Total using geometric skips, calling F(Index) for each success.
// O(expected successes) instead of O(Total).
template <typename Fn>
static void forEachBernoulliSuccess(uint64_t Total, double P, PRNG &Rng,
                                    Fn F) {
  if (P <= 0.0)
    return;
  if (P >= 1.0) {
    for (uint64_t I = 0; I != Total; ++I)
      F(I);
    return;
  }
  double LogQ = std::log1p(-P);
  uint64_t Index = 0;
  while (true) {
    double U = Rng.nextDouble();
    // Skip a geometric number of failures.
    uint64_t Skip = static_cast<uint64_t>(std::log1p(-U) / LogQ);
    if (Total - Index <= Skip)
      return;
    Index += Skip;
    F(Index);
    ++Index;
    if (Index >= Total)
      return;
  }
}

Digraph poce::randomDigraph(uint32_t NumNodes, double EdgeProb, PRNG &Rng) {
  Digraph G(NumNodes);
  uint64_t Total = static_cast<uint64_t>(NumNodes) * NumNodes;
  forEachBernoulliSuccess(Total, EdgeProb, Rng, [&](uint64_t Flat) {
    uint32_t From = static_cast<uint32_t>(Flat / NumNodes);
    uint32_t To = static_cast<uint32_t>(Flat % NumNodes);
    if (From != To)
      G.addEdge(From, To);
  });
  return G;
}

RandomConstraintShape poce::randomConstraintShape(uint32_t NumVars,
                                                  uint32_t NumCons,
                                                  double EdgeProb, PRNG &Rng) {
  RandomConstraintShape Shape;
  Shape.NumVars = NumVars;
  Shape.NumSources = NumCons / 2;
  Shape.NumSinks = NumCons - Shape.NumSources;

  uint64_t VarPairs = static_cast<uint64_t>(NumVars) * NumVars;
  forEachBernoulliSuccess(VarPairs, EdgeProb, Rng, [&](uint64_t Flat) {
    uint32_t From = static_cast<uint32_t>(Flat / NumVars);
    uint32_t To = static_cast<uint32_t>(Flat % NumVars);
    if (From != To)
      Shape.VarVar.push_back({From, To});
  });

  uint64_t SourcePairs = static_cast<uint64_t>(Shape.NumSources) * NumVars;
  forEachBernoulliSuccess(SourcePairs, EdgeProb, Rng, [&](uint64_t Flat) {
    uint32_t Source = static_cast<uint32_t>(Flat / NumVars);
    uint32_t Var = static_cast<uint32_t>(Flat % NumVars);
    Shape.SourceVar.push_back({Source, Var});
  });

  uint64_t SinkPairs = static_cast<uint64_t>(NumVars) * Shape.NumSinks;
  forEachBernoulliSuccess(SinkPairs, EdgeProb, Rng, [&](uint64_t Flat) {
    uint32_t Var = static_cast<uint32_t>(Flat / Shape.NumSinks);
    uint32_t Sink = static_cast<uint32_t>(Flat % Shape.NumSinks);
    Shape.VarSink.push_back({Var, Sink});
  });

  return Shape;
}
