//===- net/Client.h - Blocking line-protocol client -------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the serve protocol, shared by the
/// scnetcat driver, the loopback tests, and serve_bench: connect over
/// TCP or a Unix socket, send request lines, read reply lines. The
/// `metrics` verb's multi-line payload is handled by reading until its
/// "# EOF" trailer.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_CLIENT_H
#define POCE_NET_CLIENT_H

#include "support/Status.h"

#include <string>

namespace poce {
namespace net {

/// One blocking connection. Not thread-safe; give each client thread its
/// own instance.
class LineClient {
public:
  LineClient() = default;
  ~LineClient() { close(); }
  LineClient(const LineClient &) = delete;
  LineClient &operator=(const LineClient &) = delete;
  LineClient(LineClient &&Other) noexcept
      : Fd(Other.Fd), Pending(std::move(Other.Pending)) {
    Other.Fd = -1;
  }
  LineClient &operator=(LineClient &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Pending = std::move(Other.Pending);
      Other.Fd = -1;
    }
    return *this;
  }

  Status connectTcp(const std::string &HostPort);
  Status connectUnix(const std::string &Path);
  bool connected() const { return Fd >= 0; }

  /// Sends \p Line plus the newline terminator (handles short writes).
  Status sendLine(const std::string &Line);

  /// Reads one reply line (without the newline). NotFound on a clean
  /// peer close with no buffered line.
  Status recvLine(std::string &Out);

  /// sendLine + recvLine. For multi-line replies ("ok metrics") the
  /// whole payload, newline-joined, through the "# EOF" trailer.
  Status request(const std::string &Line, std::string &Reply);

  void close();
  int fd() const { return Fd; }

private:
  int Fd = -1;
  std::string Pending; ///< Bytes read past the last returned line.
};

} // namespace net
} // namespace poce

#endif // POCE_NET_CLIENT_H
